#include "sandbox.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>

#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exec/error.h"
#include "support/failpoint.h"
#include "support/logging.h"

// ASan/TSan map tens of terabytes of shadow address space, so any
// realistic RLIMIT_AS kills the child at startup; skip the address-
// space ceiling under sanitizers (CPU/stack/wall limits still apply).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VSTACK_SANDBOX_SKIP_AS_LIMIT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define VSTACK_SANDBOX_SKIP_AS_LIMIT 1
#endif
#endif

namespace vstack::exec
{

namespace
{

// ---- graceful shutdown ------------------------------------------------------

std::atomic<int> g_shutdown{0};

extern "C" void
onShutdownSignal(int)
{
    // Second signal: the user really means it — die now.  _exit is
    // async-signal-safe; 130 is the conventional SIGINT exit code.
    if (g_shutdown.exchange(1))
        _exit(130);
}

// ---- child side -------------------------------------------------------------

/** write() the whole buffer; a broken pipe means the supervisor is
 *  gone, so the child just dies. */
void
writeAll(int fd, const char *data, size_t len)
{
    while (len) {
        const ssize_t w = ::write(fd, data, len);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            _exit(121);
        }
        data += w;
        len -= static_cast<size_t>(w);
    }
}

void
writeLine(int fd, const Json &j)
{
    std::string s = j.dump();
    s += '\n';
    // Chaos site: die after half a frame, leaving the supervisor a
    // torn partial line that must triage as a host fault, never as a
    // parse error or a phantom result.
    if (failpoint("sandbox.pipe.short_write")) {
        writeAll(fd, s.data(), s.size() / 2);
        _exit(125);
    }
    writeAll(fd, s.data(), s.size());
}

/** Lower a soft limit (clamped to the current hard limit). */
void
applyLimit(int resource, uint64_t value)
{
    if (!value)
        return;
    struct rlimit rl {};
    if (::getrlimit(resource, &rl) != 0)
        return;
    rlim_t v = static_cast<rlim_t>(value);
    if (rl.rlim_max != RLIM_INFINITY && v > rl.rlim_max)
        v = rl.rlim_max;
    rl.rlim_cur = v;
    ::setrlimit(resource, &rl);
}

[[noreturn]] void
childMain(int fd, const SandboxLimits &limits,
          const std::vector<size_t> &indices,
          const std::function<Json(size_t)> &runEncoded)
{
    // The child must die on terminal signals (the parent supervises),
    // and a crashing injection should not litter core files.  SIGPIPE
    // is ignored so a vanished supervisor surfaces as an EPIPE write
    // error (clean _exit in writeAll) instead of an untriaged signal
    // death.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);
    struct rlimit noCore {0, 0};
    ::setrlimit(RLIMIT_CORE, &noCore);
#ifndef VSTACK_SANDBOX_SKIP_AS_LIMIT
    applyLimit(RLIMIT_AS, limits.memBytes);
#endif
    applyLimit(RLIMIT_CPU, limits.cpuSeconds);
    applyLimit(RLIMIT_STACK, limits.stackBytes);

    for (size_t i : indices) {
        Json begin = Json::object();
        begin.set("s", i);
        writeLine(fd, begin);
        Json line = Json::object();
        line.set("i", i);
        try {
            line.set("r", runEncoded(i));
        } catch (const SimError &e) {
            line.set("err", std::string(e.what()));
        } catch (...) {
            // A non-SimError (bad_alloc from a resource ceiling, logic
            // error) must not unwind into stack frames forked from the
            // supervisor: die here and let the parent triage the death
            // as a HostFault on the in-flight sample.
            _exit(122);
        }
        writeLine(fd, line);
    }
    // _exit: never flush stdio streams inherited from the parent
    // (journal FILE*, progress line) — those belong to the supervisor.
    _exit(0);
}

// ---- parent side ------------------------------------------------------------

double
tvSeconds(const struct timeval &tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
}

} // namespace

std::string
HostFault::describe() const
{
    std::string why;
    if (timedOut)
        why = "missed the wall-clock deadline";
    else if (signal == SIGXCPU)
        why = "tripped the CPU-time ceiling (SIGXCPU)";
    else if (signal)
        why = strprintf("died on signal %d (%s)", signal,
                        strsignal(signal));
    else
        why = strprintf("exited with status %d mid-batch", exitCode);
    return strprintf("host fault: child %s in phase %s%s "
                     "(%.2fs user, %.2fs sys, %ld KiB peak RSS)",
                     why.c_str(), phase.c_str(),
                     tornFrame ? " leaving a torn result frame" : "",
                     userSec, sysSec, maxRssKb);
}

Json
HostFault::toJson() const
{
    Json j = Json::object();
    j.set("sig", signal);
    j.set("exit", exitCode);
    j.set("timeout", timedOut);
    j.set("torn", tornFrame);
    j.set("rssKb", static_cast<int64_t>(maxRssKb));
    j.set("usr", userSec);
    j.set("sys", sysSec);
    j.set("phase", phase);
    return j;
}

std::vector<IsolatedOutcome>
runIsolatedBatch(const std::vector<size_t> &indices,
                 const SandboxLimits &limits,
                 const std::function<Json(size_t)> &runEncoded)
{
    std::vector<IsolatedOutcome> out(indices.size());
    std::map<size_t, size_t> posOf;
    for (size_t k = 0; k < indices.size(); ++k)
        posOf[indices[k]] = k;

    int fds[2];
    if (::pipe(fds) != 0)
        fatal("sandbox: pipe: %s", std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("sandbox: fork: %s", std::strerror(errno));
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fds[1], limits, indices, runEncoded);
    }
    ::close(fds[1]);

    using Clock = std::chrono::steady_clock;
    const auto wall = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(
            limits.wallSeconds > 0 ? limits.wallSeconds : 0));
    auto deadline = Clock::now() + wall;

    // inflight = position of the last begun-but-unfinished sample.
    ptrdiff_t inflight = -1;
    bool timedOut = false, interrupted = false;
    std::string buf;

    auto consumeLines = [&] {
        size_t pos = 0;
        for (size_t eol; (eol = buf.find('\n', pos)) != std::string::npos;
             pos = eol + 1) {
            std::string err;
            Json j = Json::parse(buf.substr(pos, eol - pos), &err);
            if (!err.empty() || !j.isObject())
                continue; // torn write at child death time
            if (j.has("s")) {
                auto it = posOf.find(static_cast<size_t>(j.at("s").asInt()));
                if (it != posOf.end()) {
                    inflight = static_cast<ptrdiff_t>(it->second);
                    deadline = Clock::now() + wall; // per-sample clock
                }
            } else if (j.has("i")) {
                auto it = posOf.find(static_cast<size_t>(j.at("i").asInt()));
                if (it == posOf.end())
                    continue;
                IsolatedOutcome &o = out[it->second];
                if (j.has("r")) {
                    o.kind = IsolatedOutcome::Kind::Ok;
                    o.payload = j.at("r");
                } else {
                    o.kind = IsolatedOutcome::Kind::SimErr;
                    o.errMsg = j.has("err") ? j.at("err").asString() : "";
                }
                if (inflight == static_cast<ptrdiff_t>(it->second))
                    inflight = -1;
            }
        }
        buf.erase(0, pos);
    };

    for (;;) {
        if (shutdownRequested()) {
            interrupted = true;
            ::kill(pid, SIGKILL);
            break;
        }
        int timeoutMs = 250;
        if (limits.wallSeconds > 0) {
            const auto left = deadline - Clock::now();
            if (left <= Clock::duration::zero()) {
                timedOut = true;
                ::kill(pid, SIGKILL);
                break;
            }
            const auto leftMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(left)
                    .count() +
                1;
            if (leftMs < timeoutMs)
                timeoutMs = static_cast<int>(leftMs);
        }
        struct pollfd p {fds[0], POLLIN, 0};
        const int pr = ::poll(&p, 1, timeoutMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        char chunk[4096];
        ssize_t r;
        if (failpoint("sandbox.read.eintr")) {
            errno = EINTR;
            r = -1;
        } else {
            r = ::read(fds[0], chunk, sizeof chunk);
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            break; // EOF: child closed the pipe (finished or died)
        buf.append(chunk, static_cast<size_t>(r));
        consumeLines();
    }

    // Drain what the child managed to write before it died (the child
    // is dead or dying, so EOF is imminent and this cannot hang).
    for (;;) {
        char chunk[4096];
        ssize_t r;
        if (failpoint("sandbox.read.eintr")) {
            errno = EINTR;
            r = -1;
        } else {
            r = ::read(fds[0], chunk, sizeof chunk);
        }
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            break;
        buf.append(chunk, static_cast<size_t>(r));
    }
    consumeLines();
    // A leftover partial line after EOF is a frame the child never
    // finished writing (short pipe write at death).  It is evidence of
    // how the child died, not data — record it on the triaged sample.
    const bool tornFrame = !buf.empty();
    ::close(fds[0]);

    int status = 0;
    struct rusage ru {};
    for (;;) {
        if (failpoint("sandbox.reap.eintr")) {
            errno = EINTR;
        } else if (::wait4(pid, &status, 0, &ru) >= 0) {
            break;
        }
        if (errno != EINTR)
            break;
    }

    if (interrupted)
        return out; // unfinished samples stay NotRun; caller drops them

    // Blame the child's death on the in-flight sample, or — if it died
    // between samples / during setup — on the first one it never
    // finished.  Everything after the blamed sample stays NotRun and
    // is re-batched into a fresh child by the executor.
    ptrdiff_t blame = inflight;
    std::string phase = "run";
    if (blame < 0) {
        for (size_t k = 0; k < out.size(); ++k) {
            if (out[k].kind == IsolatedOutcome::Kind::NotRun) {
                blame = static_cast<ptrdiff_t>(k);
                phase = "setup";
                break;
            }
        }
    }
    const bool cleanExit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (blame >= 0 && (!cleanExit || timedOut ||
                       out[blame].kind == IsolatedOutcome::Kind::NotRun)) {
        IsolatedOutcome &o = out[blame];
        o.kind = IsolatedOutcome::Kind::Host;
        o.host.signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        o.host.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        o.host.timedOut = timedOut;
        o.host.tornFrame = tornFrame;
        o.host.maxRssKb = ru.ru_maxrss;
        o.host.userSec = tvSeconds(ru.ru_utime);
        o.host.sysSec = tvSeconds(ru.ru_stime);
        o.host.phase = phase;
    }
    return out;
}

void
installShutdownHandler()
{
    struct sigaction sa {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: wake blocking poll/read promptly
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdownRequested()
{
    return g_shutdown.load(std::memory_order_relaxed) != 0;
}

void
requestShutdown()
{
    g_shutdown.store(1, std::memory_order_relaxed);
}

void
clearShutdown()
{
    g_shutdown.store(0, std::memory_order_relaxed);
}

} // namespace vstack::exec
