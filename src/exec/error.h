/**
 * @file
 * Typed simulation-error hierarchy.
 *
 * Errors raised on the simulation path (image loading, golden runs,
 * individual injections) used to call fatal() and kill the whole
 * process — one bad sample aborted an entire multi-thousand-injection
 * campaign.  They now throw a SimError subclass instead, so the
 * campaign executor can contain the failure to the one sample
 * (retry, then quarantine into `injectorErrors`) and the CLI can
 * surface constructor-time failures as a clean one-line error.
 *
 * Header-only so low-level libraries (machine, uarch) can throw
 * without linking against vstack_exec.
 */
#ifndef VSTACK_EXEC_ERROR_H
#define VSTACK_EXEC_ERROR_H

#include <stdexcept>
#include <string>

namespace vstack
{

/** Base class of all contained simulation errors. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/** A system image could not be loaded into a simulator. */
class ImageLoadError : public SimError
{
  public:
    explicit ImageLoadError(const std::string &msg) : SimError(msg) {}
};

/** The fault-free reference run of a campaign failed. */
class GoldenRunError : public SimError
{
  public:
    explicit GoldenRunError(const std::string &msg) : SimError(msg) {}
};

/** A single injection run failed for reasons outside the fault model
 *  (simulator defect, resource failure) — quarantined per sample. */
class InjectionError : public SimError
{
  public:
    explicit InjectionError(const std::string &msg) : SimError(msg) {}
};

/**
 * A journal-replayed sample did not reproduce when re-simulated
 * (--verify-replay).  Deliberately NOT a SimError: containment would
 * quarantine the sample and keep going, but a replay divergence means
 * either the journal is corrupt in a way the checksums cannot see or
 * the campaign is not deterministic — both poison every aggregate, so
 * the campaign must fail loudly.
 */
class ReplayDivergence : public std::runtime_error
{
  public:
    explicit ReplayDivergence(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A checkpoint-accelerated sample did not reproduce when re-run cold
 * from boot (VSTACK_VERIFY_CHECKPOINT).  Like ReplayDivergence this is
 * deliberately NOT a SimError: a divergence means the restore path or
 * the early-termination logic is wrong, which silently poisons every
 * aggregate the accelerator touches — the campaign must fail loudly,
 * not quarantine one sample and keep going.
 */
class CheckpointDivergence : public std::runtime_error
{
  public:
    explicit CheckpointDivergence(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

} // namespace vstack

#endif // VSTACK_EXEC_ERROR_H
