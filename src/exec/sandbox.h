/**
 * @file
 * Process-isolated injection sandbox (ZOFI-style fork supervisor).
 *
 * Feeding simulators corrupted state means an injection can drive the
 * *host* process into failure modes a C++ exception never surfaces:
 * SIGSEGV/SIGFPE inside the simulator, stack overflow in recursive
 * workloads, runaway allocation, or a wall-clock hang the
 * simulated-unit watchdog cannot see.  In isolated mode the executor
 * runs each batch of samples in a forked child under setrlimit
 * ceilings and a supervisor-enforced per-sample wall-clock deadline;
 * results stream back over a pipe as the journal's JSON line
 * encoding, and a child that dies on a signal, trips a ceiling, or
 * misses its deadline is classified into a HostFault triage record
 * (signal, exit status, rusage, phase) instead of taking down the
 * campaign.
 *
 * Determinism is preserved by construction: per-sample RNG streams
 * are pre-derived in the parent before any fork, so isolated runs are
 * bit-identical to in-process runs at any jobs count.
 *
 * The supervisor also owns graceful-shutdown state: a SIGINT/SIGTERM
 * handler (installShutdownHandler) flips a flag that makes workers
 * stop claiming samples and supervisors reap their children, so an
 * interrupted campaign flushes its journal and stays resumable.
 */
#ifndef VSTACK_EXEC_SANDBOX_H
#define VSTACK_EXEC_SANDBOX_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/json.h"

namespace vstack::exec
{

/** Resource ceilings and deadline for one sandboxed child. */
struct SandboxLimits
{
    /** RLIMIT_AS ceiling in bytes (0 = unlimited). */
    uint64_t memBytes = 4ull << 30;
    /** RLIMIT_CPU ceiling in seconds (0 = unlimited). */
    uint64_t cpuSeconds = 300;
    /** RLIMIT_STACK ceiling in bytes (0 = inherit). */
    uint64_t stackBytes = 64ull << 20;
    /** Supervisor wall-clock deadline per sample, in seconds; covers
     *  host-level hangs the simulated-unit watchdog cannot see
     *  (0 = no deadline).  The clock restarts at each sample, so it
     *  must cover one injection plus, for a child's first sample,
     *  simulator construction. */
    double wallSeconds = 60.0;
    /** Samples per forked child (amortizes the fork). */
    unsigned batch = 8;
};

/** Triage record of a child that died outside the fault model. */
struct HostFault
{
    int signal = 0;        ///< terminating signal (0 = exited)
    int exitCode = 0;      ///< exit status when signal == 0
    bool timedOut = false; ///< supervisor wall-clock deadline expired
    /** The child died mid-write, leaving a partial result frame on
     *  the pipe.  Triaged here instead of surfacing as a JSON parse
     *  error or a half-trusted result. */
    bool tornFrame = false;
    long maxRssKb = 0;     ///< child peak RSS (rusage, KiB)
    double userSec = 0.0;  ///< child user CPU seconds
    double sysSec = 0.0;   ///< child system CPU seconds
    /** "run" = died inside a sample's injection; "setup" = died
     *  between samples or before the first one started. */
    std::string phase = "run";

    /** One-line human description (journal "err" field). */
    std::string describe() const;
    /** Structured triage payload (journal "hf" field). */
    Json toJson() const;
};

/** Per-index outcome of one isolated batch. */
struct IsolatedOutcome
{
    enum class Kind {
        Ok,     ///< sample completed; payload holds the encoded result
        SimErr, ///< child exhausted SimError retries; errMsg set
        Host,   ///< child died on this sample; host triage set
        NotRun, ///< never attempted (a predecessor killed the child)
    };
    Kind kind = Kind::NotRun;
    Json payload;
    std::string errMsg;
    HostFault host;
};

/**
 * Run `indices` in one forked, resource-limited child.
 *
 * `runEncoded(i)` executes only in the child; it returns the sample's
 * encoded journal payload or throws SimError (which the child reports
 * as a SimErr outcome).  Any other child death — signal, tripped
 * rlimit, missed deadline, premature exit — is triaged as a Host
 * outcome on the in-flight sample; samples the child never reached
 * come back NotRun so the caller can re-batch them into a fresh
 * child.  If shutdown is requested mid-batch the child is killed and
 * unfinished samples come back NotRun.
 *
 * Thread-safe: may be called concurrently from multiple worker
 * threads (each supervises its own child).
 */
std::vector<IsolatedOutcome>
runIsolatedBatch(const std::vector<size_t> &indices,
                 const SandboxLimits &limits,
                 const std::function<Json(size_t)> &runEncoded);

/**
 * Install a SIGINT/SIGTERM handler that requests a graceful campaign
 * drain: workers stop claiming samples, supervisors kill and reap
 * their children, the journal keeps every finished record.  A second
 * signal exits immediately.  Intended for CLI drivers; the library
 * never installs handlers behind the caller's back.
 */
void installShutdownHandler();

/** True once a shutdown signal (or requestShutdown) was seen. */
bool shutdownRequested();

/** Programmatic shutdown request (tests, embedders). */
void requestShutdown();

/** Reset the shutdown flag (tests; call between campaigns). */
void clearShutdown();

} // namespace vstack::exec

#endif // VSTACK_EXEC_SANDBOX_H
