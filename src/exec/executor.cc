#include "executor.h"

#include <exception>
#include <thread>

#include "support/env.h"

namespace vstack::exec
{

uint64_t
goldenRunBudget(const WatchdogBudget &wd)
{
    const uint64_t reference = static_cast<uint64_t>(
        envIntStrict("VSTACK_GOLDEN_BUDGET", 100'000'000, 1));
    return wd.limitFor(reference);
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }
    return requested;
}

void
runOnWorkers(unsigned jobs, const std::function<void(unsigned)> &body)
{
    if (jobs <= 1) {
        body(0);
        return;
    }

    // Workers park their first exception; it is rethrown in the
    // caller once every thread has joined, so a failing worker can
    // never leave detached threads touching campaign state.
    std::mutex mu;
    std::exception_ptr firstError;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        pool.emplace_back([&, w] {
            try {
                body(w);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace vstack::exec
