#include "journal.h"

#include <cctype>
#include <cerrno>
#include <filesystem>
#include <vector>

#include <unistd.h>

#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack::exec
{

namespace
{

/** On-disk record framing version (the "fmt" header field). */
constexpr int64_t FORMAT = 2;

/** Frame a JSON dump: checksum over exactly the bytes written. */
std::string
frameLine(const std::string &text)
{
    return "c=" + crc32cHex(crc32c(text)) + " " + text;
}

/**
 * Unframe one line: verify the `c=<hex> ` prefix, the checksum, and
 * that the payload parses to a JSON object.  Returns false on any
 * damage (the caller classifies torn tail vs corrupt).
 */
bool
unframeLine(const std::string &line, Json &out)
{
    // "c=" + 8 hex digits + ' ' + at least "{}".
    if (line.size() < 13 || line[0] != 'c' || line[1] != '=' ||
        line[10] != ' ')
        return false;
    uint32_t crc = 0;
    for (int i = 2; i < 10; ++i) {
        const char c = line[i];
        crc <<= 4;
        if (c >= '0' && c <= '9')
            crc |= static_cast<uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            crc |= static_cast<uint32_t>(c - 'a' + 10);
        else
            return false;
    }
    const std::string payload = line.substr(11);
    if (crc32c(payload) != crc)
        return false;
    std::string err;
    Json j = Json::parse(payload, &err);
    if (!err.empty() || !j.isObject())
        return false;
    out = std::move(j);
    return true;
}

/** Durable single-file write: tmp + fsync + rename + directory fsync. */
bool
writeFileDurable(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".heal";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(content.data(), 1, content.size(), f) ==
        content.size();
    std::fflush(f);
    ::fsync(::fileno(f));
    std::fclose(f);
    if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    fsyncDir(std::filesystem::path(path).parent_path().string());
    return true;
}

} // namespace

Journal::~Journal()
{
    close();
}

void
Journal::close()
{
    if (out) {
        std::fclose(out);
        out = nullptr;
    }
    records.clear();
    storageFaults_ = 0;
}

Json
Journal::headerJson(const std::string &meta, uint64_t n, uint64_t seed,
                    const std::string &fm) const
{
    Json header = Json::object();
    Json m = Json::object();
    m.set("campaign", meta);
    m.set("n", n);
    m.set("seed", seed);
    m.set("fmt", FORMAT);
    // Absent for the single-bit default, so pre-fault-model journals
    // replay unchanged and default headers stay byte-identical.
    if (!fm.empty())
        m.set("fm", fm);
    header.set("meta", m);
    return header;
}

bool
Journal::open(const std::string &path, const std::string &meta, uint64_t n,
              uint64_t seed, bool resume, const std::string &fm)
{
    close();
    path_ = path;
    // Per-record campaign tag: short enough to pay per line, unique
    // enough to catch a record belonging to any other campaign.
    recTag_ = crc32cHex(crc32c(meta));

    std::error_code ec;
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    std::filesystem::create_directories(parent, ec);

    bool valid = false;
    bool quarantineWholeFile = false;
    std::vector<std::string> corruptLines;
    std::string text;
    if (resume && readFile(path, text)) {
        const bool endsWithNewline = !text.empty() && text.back() == '\n';
        bool first = true;
        size_t pos = 0;
        while (pos < text.size()) {
            const size_t eol = text.find('\n', pos);
            const bool isTail = eol == std::string::npos;
            const std::string line =
                text.substr(pos, isTail ? std::string::npos : eol - pos);
            pos = isTail ? text.size() : eol + 1;
            if (line.empty())
                continue;

            Json j;
            const bool ok = unframeLine(line, j);
            if (first) {
                // The header carries the only identity information, so
                // it is all-or-nothing: if it is damaged or foreign the
                // rest of the file cannot be trusted.
                first = false;
                if (!ok) {
                    if (line.rfind("c=", 0) != 0) {
                        warn("journal '%s' predates the framed format; "
                             "restarting it",
                             path.c_str());
                    } else {
                        // Identity is unrecoverable, so none of the
                        // records can be trusted: preserve the whole
                        // file as evidence before restarting.
                        warn("journal '%s' has a corrupt header; "
                             "quarantining the file and restarting",
                             path.c_str());
                        quarantineWholeFile = true;
                    }
                    break;
                }
                if (!j.has("meta") || !j.at("meta").has("fmt") ||
                    j.at("meta").at("fmt").asInt() != FORMAT) {
                    warn("journal '%s' has an unknown format version; "
                         "restarting it",
                         path.c_str());
                    break;
                }
                const Json &m = j.at("meta");
                if (!m.has("campaign") ||
                    m.at("campaign").asString() != meta ||
                    static_cast<uint64_t>(m.at("n").asInt()) != n ||
                    static_cast<uint64_t>(m.at("seed").asInt()) != seed ||
                    (m.has("fm") ? m.at("fm").asString()
                                 : std::string()) != fm) {
                    warn("journal '%s' belongs to a different campaign; "
                         "restarting it",
                         path.c_str());
                    break;
                }
                valid = true;
                continue;
            }

            if (!ok) {
                // A damaged final line of a file without a trailing
                // newline is the expected artifact of a kill
                // mid-append; anything else is real corruption.
                if (isTail && !endsWithNewline)
                    continue;
                corruptLines.push_back(line);
                continue;
            }
            if (!j.has("i")) {
                corruptLines.push_back(line);
                continue;
            }
            if (j.has("k") && j.at("k").asString() != recTag_) {
                // Intact frame, foreign campaign tag: the record was
                // spliced or copied in from another campaign's journal.
                corruptLines.push_back(line);
                continue;
            }
            const int64_t rawIdx = j.at("i").asInt();
            const size_t i = static_cast<size_t>(rawIdx);
            if (rawIdx < 0 || i >= n) {
                // Intact but impossible: a record beyond the campaign's
                // sample space (stale oversized file, flipped index).
                corruptLines.push_back(line);
                continue;
            }
            if (records.count(i)) {
                // Duplicate index: the first record wins (it is the one
                // any earlier resume replayed); the duplicate is
                // evidence, not data.
                corruptLines.push_back(line);
                continue;
            }
            records[i] = std::move(j);
        }
        if (!valid)
            records.clear();
    }

    if (quarantineWholeFile || !corruptLines.empty()) {
        storageFaults_ =
            quarantineWholeFile ? 1 : corruptLines.size();
        const std::string sidecar = corruptPathFor(path);
        if (std::FILE *q = std::fopen(sidecar.c_str(), "ab")) {
            if (quarantineWholeFile) {
                std::fwrite(text.data(), 1, text.size(), q);
                std::fputc('\n', q);
            } else {
                for (const std::string &line : corruptLines) {
                    std::fwrite(line.data(), 1, line.size(), q);
                    std::fputc('\n', q);
                }
            }
            std::fclose(q);
        } else {
            warn("cannot write corrupt-record sidecar '%s'",
                 sidecar.c_str());
        }
        warn("journal '%s': quarantined %zu corrupt record(s) to '%s'; "
             "lost samples will be re-simulated",
             path.c_str(), storageFaults_, sidecar.c_str());
    }

    if (valid && storageFaults_) {
        // Self-heal: rewrite the journal from the surviving records so
        // the on-disk file is clean before any new append lands.  The
        // rewrite is crash-safe (tmp + rename); if it fails we restart
        // rather than keep appending after corruption.
        std::string healed =
            frameLine(headerJson(meta, n, seed, fm).dump());
        healed += '\n';
        for (const auto &[i, rec] : records) {
            (void)i;
            healed += frameLine(rec.dump());
            healed += '\n';
        }
        if (!writeFileDurable(path, healed)) {
            warn("journal '%s': cannot rewrite after recovery; "
                 "restarting it",
                 path.c_str());
            valid = false;
            records.clear();
        }
    }

    out = std::fopen(path.c_str(), valid ? "ab" : "wb");
    if (!out) {
        warn("cannot open journal '%s'; campaign runs unjournaled",
             path.c_str());
        records.clear();
        return false;
    }
    if (!valid) {
        writeLine(headerJson(meta, n, seed, fm));
        // Make the file's existence durable, not just its content: a
        // crash right after creation must not lose the entry itself
        // (cost: one directory barrier per campaign, not per sample).
        fsyncDir(parent);
    }
    return true;
}

const Json *
Journal::find(size_t i) const
{
    auto it = records.find(i);
    return it == records.end() ? nullptr : &it->second;
}

void
Journal::writeLine(const Json &line)
{
    std::string framed = frameLine(line.dump());
    framed += '\n';
    // Chaos sites: a kill *at* the append leaves a torn tail; a short
    // write followed by later appends produces mid-file corruption.
    if (failpoint("journal.append.kill")) {
        std::fwrite(framed.data(), 1, framed.size() / 2, out);
        std::fflush(out);
        _exit(137);
    }
    if (failpoint("journal.append.short_write")) {
        std::fwrite(framed.data(), 1, framed.size() / 2, out);
        std::fflush(out);
        return;
    }
    std::fwrite(framed.data(), 1, framed.size(), out);
    std::fflush(out);
    if (fsyncOnAppend) {
        int rc;
        do {
            if (failpoint("journal.fsync.eintr")) {
                errno = EINTR;
                rc = -1;
                continue;
            }
            rc = ::fsync(::fileno(out));
        } while (rc != 0 && errno == EINTR);
    }
}

void
Journal::append(size_t i, const Json &payload)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("k", recTag_);
    j.set("r", payload);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::appendError(size_t i, const std::string &msg)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("k", recTag_);
    j.set("err", msg);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::appendHostFault(size_t i, const std::string &msg,
                         const Json &triage)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("k", recTag_);
    j.set("err", msg);
    j.set("hf", triage);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::removeFile()
{
    if (!out)
        return;
    close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
}

std::string
Journal::pathFor(const std::string &dir, const std::string &key)
{
    std::string name;
    name.reserve(key.size());
    for (char c : key) {
        name += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.')
                    ? c
                    : '_';
    }
    return dir + "/journal/" + name + ".jsonl";
}

std::string
Journal::corruptPathFor(const std::string &path)
{
    return path + ".corrupt";
}

} // namespace vstack::exec
