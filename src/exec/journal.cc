#include "journal.h"

#include <cctype>
#include <filesystem>

#include <unistd.h>

#include "support/logging.h"

namespace vstack::exec
{

Journal::~Journal()
{
    close();
}

void
Journal::close()
{
    if (out) {
        std::fclose(out);
        out = nullptr;
    }
    records.clear();
}

bool
Journal::open(const std::string &path, const std::string &meta, uint64_t n,
              uint64_t seed, bool resume)
{
    close();
    path_ = path;

    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);

    bool valid = false;
    if (resume) {
        std::string text;
        if (readFile(path, text)) {
            size_t pos = 0;
            bool first = true;
            while (pos < text.size()) {
                size_t eol = text.find('\n', pos);
                const std::string line = text.substr(
                    pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
                pos = eol == std::string::npos ? text.size() : eol + 1;
                if (line.empty())
                    continue;
                std::string err;
                Json j = Json::parse(line, &err);
                if (!err.empty() || !j.isObject())
                    continue; // torn tail line from a killed campaign
                if (first) {
                    first = false;
                    if (!j.has("meta"))
                        break;
                    const Json &m = j.at("meta");
                    if (!m.has("campaign") ||
                        m.at("campaign").asString() != meta ||
                        static_cast<uint64_t>(m.at("n").asInt()) != n ||
                        static_cast<uint64_t>(m.at("seed").asInt()) != seed) {
                        warn("journal '%s' belongs to a different campaign; "
                             "restarting it",
                             path.c_str());
                        break;
                    }
                    valid = true;
                    continue;
                }
                if (j.has("i"))
                    records[static_cast<size_t>(j.at("i").asInt())] =
                        std::move(j);
            }
            if (!valid)
                records.clear();
        }
    }

    out = std::fopen(path.c_str(), valid ? "ab" : "wb");
    if (!out) {
        warn("cannot open journal '%s'; campaign runs unjournaled",
             path.c_str());
        records.clear();
        return false;
    }
    if (!valid) {
        Json header = Json::object();
        Json m = Json::object();
        m.set("campaign", meta);
        m.set("n", n);
        m.set("seed", seed);
        header.set("meta", m);
        writeLine(header);
    }
    return true;
}

const Json *
Journal::find(size_t i) const
{
    auto it = records.find(i);
    return it == records.end() ? nullptr : &it->second;
}

void
Journal::writeLine(const Json &line)
{
    const std::string text = line.dump();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fputc('\n', out);
    std::fflush(out);
    if (fsyncOnAppend)
        ::fsync(::fileno(out));
}

void
Journal::append(size_t i, const Json &payload)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("r", payload);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::appendError(size_t i, const std::string &msg)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("err", msg);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::appendHostFault(size_t i, const std::string &msg,
                         const Json &triage)
{
    if (!out)
        return;
    Json j = Json::object();
    j.set("i", i);
    j.set("err", msg);
    j.set("hf", triage);
    std::lock_guard<std::mutex> lock(mu);
    writeLine(j);
}

void
Journal::removeFile()
{
    if (!out)
        return;
    close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
}

std::string
Journal::pathFor(const std::string &dir, const std::string &key)
{
    std::string name;
    name.reserve(key.size());
    for (char c : key) {
        name += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.')
                    ? c
                    : '_';
    }
    return dir + "/journal/" + name + ".jsonl";
}

} // namespace vstack::exec
