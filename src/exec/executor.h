/**
 * @file
 * Shared campaign execution engine.
 *
 * All three injection layers (microarchitectural, architectural,
 * software) run their campaigns through runSamples(), which provides:
 *
 *  - a worker-thread pool (`jobs`) over the campaign's sample index
 *    space.  Each sample's RNG stream is derived up front from
 *    (seed, sample index) by the caller, and per-sample results are
 *    folded in index order, so aggregates are **bit-identical at any
 *    thread count** — jobs=4 reproduces jobs=1 exactly;
 *
 *  - per-sample fault containment: a SimError thrown by one injection
 *    is retried (`retries` times) and then quarantined — the sample
 *    becomes an `injectorErrors` count instead of aborting the
 *    process;
 *
 *  - optional journaling: completed samples are appended to a Journal
 *    and replayed (instead of re-simulated) on resume.
 *
 * The engine is deliberately generic: campaigns supply a per-worker
 * simulation context factory, a run function, and encode/decode hooks
 * for the journal payload.
 */
#ifndef VSTACK_EXEC_EXECUTOR_H
#define VSTACK_EXEC_EXECUTOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "exec/error.h"
#include "exec/journal.h"

namespace vstack::exec
{

/**
 * Watchdog budget for one injection run, expressed relative to the
 * golden run: limit = factor * golden + slack.  Generalizes the
 * hard-coded `golden * 4 + 50'000` caps so a pathological injection
 * cannot hang a worker and the budget stays configurable per layer.
 */
struct WatchdogBudget
{
    double factor = 4.0;
    uint64_t slack = 50'000;

    uint64_t limitFor(uint64_t goldenUnits) const
    {
        const double limit =
            factor * static_cast<double>(goldenUnits) +
            static_cast<double>(slack);
        return limit < 1.0 ? 1 : static_cast<uint64_t>(limit);
    }
};

/** Execution policy of one campaign invocation. */
struct ExecConfig
{
    /** Worker threads; 0 = one per hardware thread; 1 = in-caller. */
    unsigned jobs = 1;
    /** Re-attempts after a SimError before quarantining a sample. */
    unsigned retries = 1;
    /** Optional journal for crash-resume (nullptr = unjournaled). */
    Journal *journal = nullptr;
    /** Optional progress callback: (samples finished, total).  Called
     *  under a lock — invocations never overlap. */
    std::function<void(size_t, size_t)> progress;
};

/** Resolve a `jobs` request (0 = hardware concurrency) to >= 1. */
unsigned resolveJobs(unsigned requested);

/**
 * Run `body(workerId)` on `jobs` workers.  jobs <= 1 runs in the
 * calling thread (no thread is ever spawned for serial campaigns).
 * An exception escaping any worker is rethrown in the caller after
 * all workers have joined.
 */
void runOnWorkers(unsigned jobs, const std::function<void(unsigned)> &body);

/**
 * Execute samples [0, n) of a campaign.
 *
 * @tparam R       per-sample result (copyable, journal-encodable)
 * @param makeCtx  called once per worker thread; returns the worker's
 *                 private simulation context (e.g. its own CycleSim)
 * @param runFn    runFn(ctx, i) simulates sample i; may throw SimError
 * @param encode   R -> Json journal payload
 * @param decode   Json journal payload -> R
 * @return per-sample results in index order; std::nullopt marks a
 *         quarantined sample (counted as an injector error by the
 *         caller, excluded from AVF denominators)
 *
 * A non-SimError exception from runFn is not contained: it propagates
 * to the caller (after workers join) — internal invariant violations
 * should still fail loudly.
 */
template <typename R, typename MakeCtx, typename RunFn, typename Encode,
          typename Decode>
std::vector<std::optional<R>>
runSamples(size_t n, const ExecConfig &cfg, MakeCtx makeCtx, RunFn runFn,
           Encode encode, Decode decode)
{
    std::vector<std::optional<R>> results(n);

    // Replay journaled samples; collect the remainder as work items.
    std::vector<size_t> todo;
    todo.reserve(n);
    size_t replayed = 0;
    for (size_t i = 0; i < n; ++i) {
        const Json *rec = cfg.journal ? cfg.journal->find(i) : nullptr;
        if (rec) {
            if (rec->has("r"))
                results[i] = decode(rec->at("r"));
            ++replayed; // an "err" record replays as a quarantine
        } else {
            todo.push_back(i);
        }
    }
    if (cfg.progress && replayed)
        cfg.progress(replayed, n);
    if (todo.empty())
        return results;

    const unsigned jobs = static_cast<unsigned>(std::min<size_t>(
        resolveJobs(cfg.jobs), todo.size()));
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> finished{replayed};
    std::mutex reportMu; // serializes journal appends + progress

    runOnWorkers(jobs, [&](unsigned) {
        auto ctx = makeCtx();
        for (;;) {
            const size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
            if (t >= todo.size())
                break;
            const size_t i = todo[t];

            std::string quarantine;
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    results[i] = runFn(*ctx, i);
                    break;
                } catch (const SimError &e) {
                    if (attempt >= cfg.retries) {
                        quarantine = e.what();
                        break;
                    }
                }
            }

            const size_t done =
                finished.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(reportMu);
            if (cfg.journal) {
                if (results[i])
                    cfg.journal->append(i, encode(*results[i]));
                else
                    cfg.journal->appendError(i, quarantine);
            }
            if (cfg.progress)
                cfg.progress(done, n);
        }
    });
    return results;
}

} // namespace vstack::exec

#endif // VSTACK_EXEC_EXECUTOR_H
