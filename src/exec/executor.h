/**
 * @file
 * Shared campaign execution engine.
 *
 * All three injection layers (microarchitectural, architectural,
 * software) run their campaigns through runSamples(), which provides:
 *
 *  - a worker-thread pool (`jobs`) over the campaign's sample index
 *    space.  Each sample's RNG stream is derived up front from
 *    (seed, sample index) by the caller, and per-sample results are
 *    folded in index order, so aggregates are **bit-identical at any
 *    thread count** — jobs=4 reproduces jobs=1 exactly;
 *
 *  - per-sample fault containment: a SimError thrown by one injection
 *    is retried (`retries` times) and then quarantined — the sample
 *    becomes an `injectorErrors` count instead of aborting the
 *    process;
 *
 *  - optional journaling: completed samples are appended to a Journal
 *    and replayed (instead of re-simulated) on resume.
 *
 * The engine is deliberately generic: campaigns supply a per-worker
 * simulation context factory, a run function, and encode/decode hooks
 * for the journal payload.
 */
#ifndef VSTACK_EXEC_EXECUTOR_H
#define VSTACK_EXEC_EXECUTOR_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/cancel.h"
#include "exec/error.h"
#include "exec/journal.h"
#include "exec/sandbox.h"

namespace vstack::exec
{

/**
 * Watchdog budget for one injection run, expressed relative to the
 * golden run: limit = factor * golden + slack.  Generalizes the
 * hard-coded `golden * 4 + 50'000` caps so a pathological injection
 * cannot hang a worker and the budget stays configurable per layer.
 */
struct WatchdogBudget
{
    double factor = 4.0;
    uint64_t slack = 50'000;

    uint64_t limitFor(uint64_t goldenUnits) const
    {
        const double limit =
            factor * static_cast<double>(goldenUnits) +
            static_cast<double>(slack);
        // double -> uint64_t is UB at or above 2^64 (huge golden runs
        // at paper scale can get there); saturate instead.
        if (limit >= 0x1p64)
            return UINT64_MAX;
        return limit < 1.0 ? 1 : static_cast<uint64_t>(limit);
    }
};

/** Execution policy of one campaign invocation. */
struct ExecConfig
{
    /** Worker threads; 0 = one per hardware thread; 1 = in-caller. */
    unsigned jobs = 1;
    /** Re-attempts after a SimError before quarantining a sample. */
    unsigned retries = 1;
    /** Optional journal for crash-resume (nullptr = unjournaled). */
    Journal *journal = nullptr;
    /** Optional progress callback: (samples finished, total).  Called
     *  under a lock — invocations never overlap. */
    std::function<void(size_t, size_t)> progress;
    /** Run sample batches in forked, resource-limited children; a
     *  child death (signal, tripped rlimit, missed wall deadline) is
     *  triaged as a HostFault quarantine instead of killing the
     *  campaign.  Results stay bit-identical to in-process runs. */
    bool isolate = false;
    /** Resource ceilings and deadline for isolated children. */
    SandboxLimits sandbox;
    /** Re-simulate this percentage (0..100) of journal-replayed
     *  samples before running the remainder and throw
     *  ReplayDivergence if any re-run disagrees with its journaled
     *  record.  Catches corruption the checksums cannot see (a stale
     *  journal against changed simulator code, non-determinism).  The
     *  check runs serially in the calling process, even under
     *  cfg.isolate (VSTACK_VERIFY_REPLAY / --verify-replay). */
    double verifyReplay = 0.0;
    /** Optional cooperative cancel token.  Workers poll it wherever
     *  they poll the global shutdown flag (before claiming a sample or
     *  batch); a fired token drains this one campaign exactly like a
     *  signal drain — journal intact, partial results never cached —
     *  while unrelated campaigns in the process keep running.  The
     *  token must outlive the run. */
    const CancelToken *cancel = nullptr;
    /** Optional dispatch-order key: pending samples are handed to
     *  workers in ascending scheduleKey(i) order (ties in index
     *  order) instead of index order.  Campaigns sort by injection
     *  cycle so consecutive samples restore the same checkpoint.
     *  Dispatch order only — results are still folded, journaled, and
     *  reported in sample-index order, so aggregates stay
     *  bit-identical at any jobs count, under isolate, and across
     *  resume. */
    std::function<uint64_t(size_t)> scheduleKey;
};

/**
 * Campaign-accelerator policy: checkpoint/restore fast-forward and
 * golden-trace early termination.  The defaults are the shipped
 * behavior (acceleration on); results are bit-identical either way by
 * construction, enforced on demand by `verifyPercent`.
 */
struct CheckpointPolicy
{
    /** Capture checkpoints during the golden run and restore the
     *  nearest one below each injection point. */
    bool enabled = true;
    /** Checkpoints spread evenly across the golden run. */
    unsigned checkpoints = 16;
    /** State digests recorded per checkpoint interval (early
     *  termination can fire this much sooner than the next
     *  checkpoint). */
    unsigned digestsPerCheckpoint = 4;
    /** Stop an injected run as soon as its state digest reconverges
     *  with the golden trace (requires enabled). */
    bool earlyStop = true;
    /** Re-run this percentage (0..100) of samples cold — from boot,
     *  no early termination — and throw CheckpointDivergence if any
     *  byte of the sample record differs (VSTACK_VERIFY_CHECKPOINT). */
    double verifyPercent = 0.0;

    /** Digest cadence in golden-run units (cycles/insts/steps). */
    uint64_t digestInterval(uint64_t goldenUnits) const
    {
        const uint64_t points = std::max<uint64_t>(
            1, uint64_t{checkpoints} * std::max(1u, digestsPerCheckpoint));
        return std::max<uint64_t>(1, goldenUnits / points);
    }

    /** On the fast path, checkpoint at EVERY digest grid point instead
     *  of every fourth one: batched digests make snapshot capture
     *  cheap, and a 4x denser restore grid cuts the mean fast-forward
     *  from half a checkpoint interval to half a digest interval.  The
     *  digest grid itself (checkpoints x digestsPerCheckpoint) is
     *  unchanged, so early-termination decisions — and therefore every
     *  sample's outcome — are identical either way. */
    void densify(bool fastPath)
    {
        if (!fastPath)
            return;
        checkpoints *= std::max(1u, digestsPerCheckpoint);
        digestsPerCheckpoint = 1;
    }
};

/**
 * Budget for a campaign's fault-free reference run.  There is no
 * golden baseline to scale from yet, so the watchdog is applied to an
 * env-overridable reference unit count (VSTACK_GOLDEN_BUDGET, strict,
 * >= 1; default 100'000'000 — with the default 4x+50k watchdog that
 * reproduces the historical 4e8-cycle cap).
 */
uint64_t goldenRunBudget(const WatchdogBudget &wd);

/**
 * Deterministic membership test for the --verify-replay subset:
 * depends only on (index, percent), so the same samples are checked
 * at any thread count and on every resume.
 */
inline bool
verifyReplaySelected(size_t i, double percent)
{
    if (percent <= 0.0)
        return false;
    if (percent >= 100.0)
        return true;
    // splitmix64 finalizer: spreads consecutive indices uniformly.
    uint64_t h = static_cast<uint64_t>(i) + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<double>(h % 10000) < percent * 100.0;
}

/** Resolve a `jobs` request (0 = hardware concurrency) to >= 1. */
unsigned resolveJobs(unsigned requested);

/** True when this run should stop claiming work: a process-wide
 *  shutdown signal, or this campaign's own cancel token fired. */
inline bool
drainRequested(const ExecConfig &cfg)
{
    return shutdownRequested() || cancelRequested(cfg.cancel);
}

/**
 * Run `body(workerId)` on `jobs` workers.  jobs <= 1 runs in the
 * calling thread (no thread is ever spawned for serial campaigns).
 * An exception escaping any worker is rethrown in the caller after
 * all workers have joined.
 */
void runOnWorkers(unsigned jobs, const std::function<void(unsigned)> &body);

/**
 * Isolated-mode worker loop (ExecConfig::isolate): workers claim
 * whole batches and supervise one forked child per batch via
 * runIsolatedBatch().  makeCtx/runFn execute only inside children, so
 * a sample that SIGSEGVs, trips an rlimit ceiling, or hangs past the
 * wall deadline kills its child, not the campaign; the supervisor
 * triages it as a HostFault, retries it (cfg.retries times, each in a
 * fresh child), and finally quarantines it into the journal with its
 * triage record.  Samples a dead child never reached are re-batched.
 * Implementation detail of runSamples().
 */
template <typename R, typename MakeCtx, typename RunFn, typename Encode,
          typename Decode>
void
runSamplesIsolated(std::vector<std::optional<R>> &results,
                   const std::vector<size_t> &todo, size_t n,
                   const ExecConfig &cfg, unsigned jobs,
                   std::atomic<size_t> &cursor, std::atomic<size_t> &finished,
                   std::mutex &reportMu, MakeCtx makeCtx, RunFn runFn,
                   Encode encode, Decode decode)
{
    const size_t batch = std::max<size_t>(1, cfg.sandbox.batch);
    runOnWorkers(jobs, [&](unsigned) {
        // Materialized lazily *inside each forked child* — the parent
        // never constructs a simulator in isolated mode, and a fresh
        // fork always starts with a pristine (null) context because a
        // child's writes are invisible to the parent.
        decltype(makeCtx()) childCtx{};
        const std::function<Json(size_t)> childRun =
            [&](size_t i) -> Json {
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    if (!childCtx)
                        childCtx = makeCtx();
                    return encode(runFn(*childCtx, i));
                } catch (const SimError &) {
                    if (attempt >= cfg.retries)
                        throw;
                    childCtx = {}; // retry on a fresh simulator
                }
            }
        };

        auto report = [&](size_t i, auto journalAppend) {
            const size_t done =
                finished.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(reportMu);
            if (cfg.journal)
                journalAppend();
            if (cfg.progress)
                cfg.progress(done, n);
            (void)i;
        };

        for (;;) {
            if (drainRequested(cfg))
                break;
            const size_t t0 =
                cursor.fetch_add(batch, std::memory_order_relaxed);
            if (t0 >= todo.size())
                break;
            const size_t t1 = std::min(todo.size(), t0 + batch);
            std::vector<size_t> pending(todo.begin() + t0,
                                        todo.begin() + t1);
            std::map<size_t, unsigned> hostFailures;
            while (!pending.empty()) {
                auto outcomes =
                    runIsolatedBatch(pending, cfg.sandbox, childRun);
                std::vector<size_t> requeue;
                for (size_t k = 0; k < pending.size(); ++k) {
                    const size_t i = pending[k];
                    IsolatedOutcome &o = outcomes[k];
                    switch (o.kind) {
                      case IsolatedOutcome::Kind::Ok:
                        results[i] = decode(o.payload);
                        report(i, [&] {
                            cfg.journal->append(i, o.payload);
                        });
                        break;
                      case IsolatedOutcome::Kind::SimErr:
                        // The child already exhausted SimError retries.
                        report(i, [&] {
                            cfg.journal->appendError(i, o.errMsg);
                        });
                        break;
                      case IsolatedOutcome::Kind::Host:
                        if (!drainRequested(cfg) &&
                            ++hostFailures[i] <= cfg.retries) {
                            requeue.push_back(i);
                        } else if (!drainRequested(cfg)) {
                            report(i, [&] {
                                cfg.journal->appendHostFault(
                                    i, o.host.describe(), o.host.toJson());
                            });
                        }
                        break;
                      case IsolatedOutcome::Kind::NotRun:
                        if (!drainRequested(cfg))
                            requeue.push_back(i);
                        break;
                    }
                }
                if (drainRequested(cfg))
                    break; // drop unfinished work; journal stays valid
                pending = std::move(requeue);
            }
        }
    });
}

/**
 * Execute samples [0, n) of a campaign.
 *
 * @tparam R       per-sample result (copyable, journal-encodable)
 * @param makeCtx  called once per worker thread; returns the worker's
 *                 private simulation context (e.g. its own CycleSim)
 * @param runFn    runFn(ctx, i) simulates sample i; may throw SimError
 * @param encode   R -> Json journal payload
 * @param decode   Json journal payload -> R
 * @return per-sample results in index order; std::nullopt marks a
 *         quarantined sample (counted as an injector error by the
 *         caller, excluded from AVF denominators)
 *
 * In-process mode: a non-SimError exception from runFn is not
 * contained — it propagates to the caller (after workers join), so
 * internal invariant violations still fail loudly.  Isolated mode
 * (cfg.isolate) cannot make that distinction: *any* child death —
 * SIGSEGV, std::terminate, rlimit ceiling, missed wall deadline — is
 * triaged as a HostFault and quarantined, which is the point of the
 * sandbox.
 *
 * If a shutdown was requested (see sandbox.h) the run drains
 * gracefully: finished samples are journaled, unclaimed ones are left
 * for a --resume invocation, and unfinished entries read as nullopt.
 */
template <typename R, typename MakeCtx, typename RunFn, typename Encode,
          typename Decode>
std::vector<std::optional<R>>
runSamples(size_t n, const ExecConfig &cfg, MakeCtx makeCtx, RunFn runFn,
           Encode encode, Decode decode)
{
    std::vector<std::optional<R>> results(n);

    // Replay journaled samples; collect the remainder as work items.
    std::vector<size_t> todo;
    todo.reserve(n);
    std::vector<size_t> verify;
    size_t replayed = 0;
    for (size_t i = 0; i < n; ++i) {
        const Json *rec = cfg.journal ? cfg.journal->find(i) : nullptr;
        if (rec) {
            if (rec->has("r")) {
                results[i] = decode(rec->at("r"));
                if (verifyReplaySelected(i, cfg.verifyReplay))
                    verify.push_back(i);
            }
            ++replayed; // an "err" record replays as a quarantine
        } else {
            todo.push_back(i);
        }
    }

    if (!verify.empty()) {
        // Spot-check the replay before trusting it: re-simulate the
        // deterministic subset serially and require byte-identical
        // journal payloads.  A SimError here is also a divergence —
        // the journaled run completed, so a failing re-run means the
        // record no longer describes this campaign.
        auto ctx = makeCtx();
        for (size_t i : verify) {
            const std::string want =
                cfg.journal->find(i)->at("r").dump();
            std::string got;
            try {
                got = encode(runFn(*ctx, i)).dump();
            } catch (const SimError &e) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " replayed from the journal but failed to "
                    "re-simulate: " + e.what());
            }
            if (got != want) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " diverged from its journaled record (journal " +
                    want + ", re-run " + got +
                    "); the journal does not describe this campaign");
            }
        }
    }

    if (cfg.progress && replayed)
        cfg.progress(replayed, n);
    if (todo.empty())
        return results;

    if (cfg.scheduleKey) {
        // Dispatch order only; stable so equal keys keep index order
        // and the sequence is deterministic.
        std::stable_sort(todo.begin(), todo.end(),
                         [&](size_t a, size_t b) {
                             return cfg.scheduleKey(a) < cfg.scheduleKey(b);
                         });
    }

    const unsigned jobs = static_cast<unsigned>(std::min<size_t>(
        resolveJobs(cfg.jobs), todo.size()));
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> finished{replayed};
    std::mutex reportMu; // serializes journal appends + progress

    if (cfg.isolate) {
        runSamplesIsolated(results, todo, n, cfg, jobs, cursor, finished,
                           reportMu, makeCtx, runFn, encode, decode);
        return results;
    }

    runOnWorkers(jobs, [&](unsigned) {
        auto ctx = makeCtx();
        for (;;) {
            if (drainRequested(cfg))
                break; // graceful drain: stop claiming samples
            const size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
            if (t >= todo.size())
                break;
            const size_t i = todo[t];

            std::string quarantine;
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    results[i] = runFn(*ctx, i);
                    break;
                } catch (const SimError &e) {
                    if (attempt >= cfg.retries) {
                        quarantine = e.what();
                        break;
                    }
                }
            }

            const size_t done =
                finished.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(reportMu);
            if (cfg.journal) {
                if (results[i])
                    cfg.journal->append(i, encode(*results[i]));
                else
                    cfg.journal->appendError(i, quarantine);
            }
            if (cfg.progress)
                cfg.progress(done, n);
        }
    });
    return results;
}

} // namespace vstack::exec

#endif // VSTACK_EXEC_EXECUTOR_H
