/**
 * @file
 * Cooperative per-campaign cancellation.
 *
 * The global shutdown flag (sandbox.h) drains *every* campaign in the
 * process — right for Ctrl-C on a CLI run, wrong for a long-lived
 * service where one request's deadline or a client's cancel must stop
 * exactly one suite while its neighbours keep simulating.  A
 * CancelToken scopes the drain: the executor, the suite scheduler,
 * and the serial entry points all poll the token at their existing
 * shutdown checkpoints (before claiming a sample / batch / campaign),
 * so a cancelled run stops at the same safe points as a signal drain
 * — journals intact, partial results never cached, everything
 * resumable.
 *
 * Cancellation is *cooperative* at sample granularity: a sample
 * already in flight finishes (the per-injection watchdog budget bounds
 * how long that can take), then the worker stops claiming.  A token
 * may also carry a wall-clock deadline; expiry latches the token
 * cancelled with reason "deadline", so `vstack suite --deadline=S` and
 * the vstackd per-request deadline are the same mechanism.
 */
#ifndef VSTACK_EXEC_CANCEL_H
#define VSTACK_EXEC_CANCEL_H

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

namespace vstack::exec
{

class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation with a human-readable reason (idempotent;
     *  the first reason wins).  Thread-safe. */
    void cancel(const std::string &why = "cancelled")
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!flag_.load(std::memory_order_relaxed))
                reason_ = why;
        }
        flag_.store(true, std::memory_order_release);
    }

    /** Arm a wall-clock deadline `seconds` from now; expiry latches
     *  the token cancelled with reason "deadline".  <= 0 disarms. */
    void setDeadlineAfter(double seconds)
    {
        if (seconds <= 0.0) {
            hasDeadline_ = false;
            return;
        }
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        hasDeadline_ = true;
    }

    /**
     * True once cancelled (or the deadline passed).  The fast path is
     * one relaxed atomic load; deadline expiry latches into the flag
     * so the reason is stable afterwards.  Safe to call concurrently.
     */
    bool cancelled() const
    {
        if (flag_.load(std::memory_order_acquire))
            return true;
        if (hasDeadline_ &&
            std::chrono::steady_clock::now() >= deadline_) {
            const_cast<CancelToken *>(this)->cancel("deadline");
            return true;
        }
        return false;
    }

    /** True when the cancellation was caused by deadline expiry. */
    bool deadlineExpired() const
    {
        return cancelled() && reason() == "deadline";
    }

    /** The first cancel reason ("" while not cancelled). */
    std::string reason() const
    {
        if (!flag_.load(std::memory_order_acquire))
            return {};
        std::lock_guard<std::mutex> lock(mu_);
        return reason_;
    }

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex mu_;
    std::string reason_;
    bool hasDeadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
};

/** Null-safe poll: no token means never cancelled. */
inline bool
cancelRequested(const CancelToken *token)
{
    return token && token->cancelled();
}

} // namespace vstack::exec

#endif // VSTACK_EXEC_CANCEL_H
