/**
 * @file
 * Layer-agnostic campaign driver interface.
 *
 * Each injection layer (microarchitectural, architectural, software)
 * used to carry its own copy of the harness plumbing: golden-run and
 * trace acquisition, checkpoint-ordered dispatch, journal payload
 * encoding, the cold verification audit, and index-ordered folding.
 * LayerDriver factors the per-layer surface down to what genuinely
 * differs — how to build a worker context, how to run one sample hot
 * or cold, and how to describe it — so the harness (runDriver, below)
 * and the suite scheduler (src/core/suite.h) share one execution
 * path for every layer.
 *
 * The payload contract: runSample() returns the *exact* bytes that go
 * into the resume journal ("r" record) and that the fold functions
 * consume, so journals, resumed runs, and the suite scheduler are
 * byte-compatible with the historical per-layer paths.
 */
#ifndef VSTACK_EXEC_DRIVER_H
#define VSTACK_EXEC_DRIVER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "support/json.h"

namespace vstack::exec
{

class LayerDriver
{
  public:
    /** A worker's private simulation context (its own simulator). */
    struct Ctx
    {
        virtual ~Ctx() = default;
    };

    virtual ~LayerDriver() = default;

    /** Layer tag for keys/diagnostics: "uarch", "pvf", "svf". */
    virtual const char *layerName() const = 0;

    /** Campaign sample count. */
    virtual size_t samples() const = 0;

    /**
     * Acquire the golden reference and (policy permitting) record the
     * checkpoint/digest trace, then sample the fault list.  Idempotent
     * and safe to call concurrently with prepare() of drivers sharing
     * the same underlying campaign.  Must complete before any
     * runSample()/scheduleKey() call.
     * @throws GoldenRunError on a failed or non-reproducing golden run
     */
    virtual void prepare() = 0;

    /** Build one worker's private simulation context. */
    virtual std::unique_ptr<Ctx> makeCtx() const = 0;

    /** Simulate sample i and return its journal payload (the exact
     *  bytes journaled and folded).  May throw SimError. */
    virtual Json runSample(Ctx &ctx, size_t i) const = 0;

    /** Simulate sample i cold — from boot, no fast-forward, no early
     *  termination (the checkpoint-audit reference path). */
    virtual Json runSampleCold(Ctx &ctx, size_t i) const = 0;

    /** True when samples should dispatch in scheduleKey() order
     *  (checkpoint-restore locality).  Valid after prepare(). */
    virtual bool scheduled() const = 0;

    /** Dispatch-order key of sample i (injection cycle / instruction /
     *  step).  Valid after prepare() when scheduled(). */
    virtual uint64_t scheduleKey(size_t i) const = 0;

    /** Percentage (0..100) of samples to re-run cold after the
     *  campaign; 0 when acceleration is off or unverified. */
    virtual double verifyPercent() const = 0;

    /** Human descriptor of sample i for divergence messages, e.g.
     *  "sample 12 (RF, cycle 3456, bit 17)". */
    virtual std::string describeSample(size_t i) const = 0;

    /** Render a journal payload for divergence messages (layers whose
     *  payload is a bare Outcome integer print its name instead). */
    virtual std::string payloadName(const Json &payload) const
    {
        return payload.dump();
    }
};

/**
 * Run one sample through a driver with the chaos hook: the
 * `driver.sample.simerr` failpoint (support/failpoint.h) turns a hit
 * into an InjectionError, letting tests place a deterministic
 * injector failure in any campaign of a suite and prove it is
 * quarantined to that one sample.
 */
Json runDriverSample(const LayerDriver &d, LayerDriver::Ctx &ctx, size_t i);

/**
 * Prepare a driver with the chaos hook: the `driver.prepare.goldenerr`
 * failpoint turns the golden-run acquisition into a GoldenRunError,
 * letting tests place a deterministic golden failure in any campaign
 * of a suite and prove it is contained to that campaign's plan
 * entries instead of aborting the whole submission.
 */
void prepareDriver(LayerDriver &d);

/**
 * Execute a prepared driver's samples through runSamples(): worker
 * pool, SimError retry + quarantine, journaling, isolation, and
 * checkpoint-ordered dispatch when the driver asks for it.  Returns
 * per-sample payloads in index order (nullopt = quarantined).
 */
std::vector<std::optional<Json>>
runDriverSamples(const LayerDriver &d, const ExecConfig &cfg);

/**
 * The VSTACK_VERIFY_CHECKPOINT audit: re-run the deterministic
 * d.verifyPercent() subset of `samples` cold and require byte-identical
 * payloads.  Serial, in the calling thread, after the campaign — the
 * accelerated results it checks are already final.  No-op when the
 * audit is off or a shutdown was requested.
 * @throws CheckpointDivergence on the first mismatch
 */
void verifyDriverSamples(const LayerDriver &d,
                         const std::vector<std::optional<Json>> &samples);

/**
 * The full single-campaign harness: prepare, run, verify.  The one
 * body behind UarchCampaign::run / PvfCampaign::run / SvfCampaign::run;
 * callers fold the returned payloads with their layer's fold function.
 */
std::vector<std::optional<Json>> runDriver(LayerDriver &d,
                                           const ExecConfig &cfg);

} // namespace vstack::exec

#endif // VSTACK_EXEC_DRIVER_H
