/**
 * @file
 * MMIO devices shared by the functional emulator and the cycle-level
 * simulator.
 *
 * The DMA output engine is the mechanism behind the paper's "Escaped"
 * (ESC) fault propagation model: the kernel stages write() payloads in
 * memory, programs a descriptor, and the engine later pulls the bytes
 * straight out of the memory hierarchy without the CPU touching them
 * again.  A bit flipped in those bytes after the last CPU store
 * corrupts program output without ever crossing the architectural
 * interface.
 */
#ifndef VSTACK_MACHINE_DEVICES_H
#define VSTACK_MACHINE_DEVICES_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "support/snapshot.h"

namespace vstack
{

/** Outcome-relevant state captured from the devices after a run. */
struct DeviceOutput
{
    std::vector<uint8_t> dma; ///< DMA-drained program output
    std::string console;      ///< debug console bytes (not compared)
    uint32_t exitCode = 0;
    bool exited = false;
    bool detected = false;    ///< FT detection was signalled
    bool truncated = false;   ///< output exceeded the capture cap
    uint32_t detectCode = 0;
};

/**
 * The MMIO device hub: DMA output engine, console, exit/detect ports.
 *
 * Simulation-time is expressed in "ticks" supplied by the owner
 * (instructions for the functional emulator, cycles for the
 * cycle-level core).  Descriptors rung at tick T are drained at
 * T + dmaDelay, or at halt time, whichever comes first.
 */
class DeviceHub
{
  public:
    /** Reads guest memory the way the DMA engine would see it (i.e.
     *  snooping caches in the cycle-level simulator). */
    using MemReader =
        std::function<void(uint32_t addr, uint8_t *dst, size_t n)>;

    explicit DeviceHub(MemReader reader, uint64_t dmaDelay = 4096)
        : reader(std::move(reader)), dmaDelay(dmaDelay)
    {}

    /** Handle an MMIO store. Returns false for unmapped offsets. */
    bool store(uint32_t addr, uint64_t value, uint64_t now);

    /** Handle an MMIO load. Returns false for unmapped offsets. */
    bool load(uint32_t addr, uint64_t now, uint64_t &value) const;

    /** Drain descriptors whose delay has elapsed. Call regularly. */
    void tick(uint64_t now);

    /** Earliest tick at which a pending descriptor becomes ready, or
     *  UINT64_MAX when the queue is empty. */
    uint64_t nextReady() const;

    /** Drain everything that is still queued (at HALT). */
    void flush();

    /** True once the exit port has been written. */
    bool exited() const { return out.exited; }
    /** True once the detect port has been written. */
    bool detected() const { return out.detected; }

    const DeviceOutput &output() const { return out; }

    /** Reset all device state for a fresh run. */
    void reset();

    /** Captured-output ceiling enforced by drain(); early termination
     *  refuses to fire once synthesized output could cross it. */
    static constexpr size_t captureCap = 4u << 20;

    /**
     * Serialize mutable device state (not the reader/delay config).
     * Digest mode covers only future-behavior-relevant state: DMA
     * registers, the descriptor queue, and the truncation flag (the
     * output size feeds the capture cap, but emitted bytes are
     * compared against the golden stream separately).  Full mode adds
     * the output buffers and exit/detect latches for checkpointing.
     */
    void saveState(snap::ByteSink &s, bool digest) const;

    /** Restore state saved by saveState(s, false). */
    void loadState(snap::ByteSource &s);

  private:
    struct Descriptor
    {
        uint32_t src;
        uint32_t len;
        uint64_t readyAt;
    };

    void drain(const Descriptor &d);

    MemReader reader;
    uint64_t dmaDelay;
    uint32_t dmaSrc = 0;
    uint32_t dmaLen = 0;
    std::deque<Descriptor> queue;
    DeviceOutput out;
};

} // namespace vstack

#endif // VSTACK_MACHINE_DEVICES_H
