#include "physmem.h"

#include "exec/error.h"
#include "support/logging.h"

namespace vstack
{

void
PhysMem::load(const Program &prog)
{
    for (const auto &seg : prog.segments) {
        if (!memmap::inRam(seg.addr, static_cast<unsigned>(0)) ||
            seg.addr + seg.bytes.size() > bytes.size()) {
            throw ImageLoadError(strprintf(
                "segment at 0x%08x (%zu bytes) does not fit in RAM",
                seg.addr, seg.bytes.size()));
        }
        std::memcpy(bytes.data() + seg.addr, seg.bytes.data(),
                    seg.bytes.size());
    }
    digestDirty_.markAll();
    restoreDirty_.markAll();
}

} // namespace vstack
