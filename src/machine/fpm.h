/**
 * @file
 * Fault Propagation Models (paper Table I).
 *
 * FPMs describe how a hardware fault manifests at the hardware/
 * software interface:
 *  - WD  (Wrong Data): the right resource was used but its content
 *    was corrupted;
 *  - WI  (Wrong Instruction): a different instruction executed
 *    (opcode corruption or control-flow/PC corruption);
 *  - WOI (Wrong Operand or Immediate): operand fields corrupted
 *    (register specifiers, immediates, address offsets);
 *  - ESC (Escaped): the fault corrupts program output without ever
 *    re-entering the program flow (e.g. via the DMA output path) —
 *    invisible by construction to PVF/SVF methods.
 */
#ifndef VSTACK_MACHINE_FPM_H
#define VSTACK_MACHINE_FPM_H

#include <cstdint>

namespace vstack
{

enum class Fpm : uint8_t { WD, WI, WOI, ESC };

constexpr const char *
fpmName(Fpm f)
{
    switch (f) {
      case Fpm::WD: return "WD";
      case Fpm::WI: return "WI";
      case Fpm::WOI: return "WOI";
      case Fpm::ESC: return "ESC";
    }
    return "?";
}

constexpr Fpm allFpms[] = {Fpm::WD, Fpm::WI, Fpm::WOI, Fpm::ESC};

/** Inverse of fpmName(); false when the name matches nothing. */
inline bool
fpmFromName(const char *name, Fpm &out)
{
    for (Fpm f : allFpms) {
        const char *n = fpmName(f);
        size_t i = 0;
        while (n[i] && name[i] == n[i])
            ++i;
        if (!n[i] && !name[i]) {
            out = f;
            return true;
        }
    }
    return false;
}

/** Per-FPM counters from an HVF campaign. */
struct FpmCounts
{
    uint64_t wd = 0;
    uint64_t wi = 0;
    uint64_t woi = 0;
    uint64_t esc = 0;

    uint64_t total() const { return wd + wi + woi + esc; }

    void add(Fpm f)
    {
        switch (f) {
          case Fpm::WD: ++wd; break;
          case Fpm::WI: ++wi; break;
          case Fpm::WOI: ++woi; break;
          case Fpm::ESC: ++esc; break;
        }
    }

    uint64_t get(Fpm f) const
    {
        switch (f) {
          case Fpm::WD: return wd;
          case Fpm::WI: return wi;
          case Fpm::WOI: return woi;
          case Fpm::ESC: return esc;
        }
        return 0;
    }
};

} // namespace vstack

#endif // VSTACK_MACHINE_FPM_H
