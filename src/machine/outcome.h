/**
 * @file
 * Fault-effect classification shared by all injection layers.
 *
 * The taxonomy follows the paper (Section III.A): Masked (no
 * observable deviation), SDC (normal completion, wrong output), Crash
 * (exception / kernel panic / deadlock / watchdog), plus Detected for
 * runs where the software fault-tolerance instrumentation raised the
 * detect syscall (Section VI.B; excluded from vulnerability).
 */
#ifndef VSTACK_MACHINE_OUTCOME_H
#define VSTACK_MACHINE_OUTCOME_H

#include <cstdint>

namespace vstack
{

/** Why a simulation run stopped (shared by both simulators). */
enum class StopReason : uint8_t {
    Running,   ///< not stopped yet
    Exited,    ///< guest exited via the exit syscall
    DetectHit, ///< guest raised the detect syscall
    Exception, ///< guest fault (bad access, undefined inst, ...)
    Watchdog,  ///< cycle/instruction budget exhausted or deadlock
};

enum class Outcome : uint8_t {
    Masked,
    Sdc,
    Crash,
    Detected,
};

/** Short name, e.g. "SDC". */
constexpr const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "Masked";
      case Outcome::Sdc: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Detected: return "Detected";
    }
    return "?";
}

/** Aggregated outcome counts of a campaign. */
struct OutcomeCounts
{
    uint64_t masked = 0;
    uint64_t sdc = 0;
    uint64_t crash = 0;
    uint64_t detected = 0;
    /** Samples quarantined after a contained injector failure (a
     *  SimError from the simulator itself, not a modelled fault
     *  effect).  Excluded from every rate denominator, mirroring the
     *  paper's §VI.B exclusion of non-classifiable runs. */
    uint64_t injectorErrors = 0;

    /** Classified samples (injector errors excluded). */
    uint64_t total() const { return masked + sdc + crash + detected; }

    void add(Outcome o)
    {
        switch (o) {
          case Outcome::Masked: ++masked; break;
          case Outcome::Sdc: ++sdc; break;
          case Outcome::Crash: ++crash; break;
          case Outcome::Detected: ++detected; break;
        }
    }

    double sdcRate() const
    {
        return total() ? static_cast<double>(sdc) / total() : 0.0;
    }
    double crashRate() const
    {
        return total() ? static_cast<double>(crash) / total() : 0.0;
    }
    double detectedRate() const
    {
        return total() ? static_cast<double>(detected) / total() : 0.0;
    }
    /** Vulnerability = SDC + Crash rate (detections excluded). */
    double vulnerability() const { return sdcRate() + crashRate(); }
};

} // namespace vstack

#endif // VSTACK_MACHINE_OUTCOME_H
