/**
 * @file
 * Fault-effect classification shared by all injection layers.
 *
 * The taxonomy follows the paper (Section III.A): Masked (no
 * observable deviation), SDC (normal completion, wrong output), Crash
 * (exception / kernel panic / deadlock / watchdog), plus Detected for
 * runs where the software fault-tolerance instrumentation raised the
 * detect syscall (Section VI.B; excluded from vulnerability).
 */
#ifndef VSTACK_MACHINE_OUTCOME_H
#define VSTACK_MACHINE_OUTCOME_H

#include <cstdint>
#include <optional>
#include <vector>

#include "support/json.h"

namespace vstack
{

struct DeviceOutput;

/** Why a simulation run stopped (shared by both simulators). */
enum class StopReason : uint8_t {
    Running,   ///< not stopped yet
    Exited,    ///< guest exited via the exit syscall
    DetectHit, ///< guest raised the detect syscall
    Exception, ///< guest fault (bad access, undefined inst, ...)
    Watchdog,  ///< cycle/instruction budget exhausted or deadlock
};

enum class Outcome : uint8_t {
    Masked,
    Sdc,
    Crash,
    Detected,
};

/** Short name, e.g. "SDC". */
constexpr const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "Masked";
      case Outcome::Sdc: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Detected: return "Detected";
    }
    return "?";
}

/** Aggregated outcome counts of a campaign. */
struct OutcomeCounts
{
    uint64_t masked = 0;
    uint64_t sdc = 0;
    uint64_t crash = 0;
    uint64_t detected = 0;
    /** Samples quarantined after a contained injector failure (a
     *  SimError from the simulator itself, not a modelled fault
     *  effect).  Excluded from every rate denominator, mirroring the
     *  paper's §VI.B exclusion of non-classifiable runs. */
    uint64_t injectorErrors = 0;

    /** Classified samples (injector errors excluded). */
    uint64_t total() const { return masked + sdc + crash + detected; }

    void add(Outcome o)
    {
        switch (o) {
          case Outcome::Masked: ++masked; break;
          case Outcome::Sdc: ++sdc; break;
          case Outcome::Crash: ++crash; break;
          case Outcome::Detected: ++detected; break;
        }
    }

    double sdcRate() const
    {
        return total() ? static_cast<double>(sdc) / total() : 0.0;
    }
    double crashRate() const
    {
        return total() ? static_cast<double>(crash) / total() : 0.0;
    }
    double detectedRate() const
    {
        return total() ? static_cast<double>(detected) / total() : 0.0;
    }
    /** Vulnerability = SDC + Crash rate (detections excluded). */
    double vulnerability() const { return sdcRate() + crashRate(); }
};

/**
 * Golden-reference classification shared by all three injection
 * layers (paper Section III.A).  The stop-reason mapping is identical
 * everywhere: a detect-syscall hit is Detected; an exception, a
 * tripped watchdog, or a run that never stopped is a Crash.  Only a
 * cleanly exited run consults the layer's output comparison — the
 * `outputMatchesGolden` hook — to separate Masked from SDC.
 */
Outcome classifyRun(StopReason stop, bool outputMatchesGolden);

/** classifyRun() with the machine layers' output hook: DMA stream and
 *  exit code against the golden run (uarch + arch campaigns). */
Outcome classifyDeviceRun(StopReason stop, const DeviceOutput &out,
                          const std::vector<uint8_t> &goldenDma,
                          uint32_t goldenExitCode);

/**
 * Fold per-sample outcome payloads (the journal encoding used by the
 * PVF and SVF drivers: one integer Outcome per sample) into aggregate
 * counts, in index order.  A missing sample is a quarantined injector
 * error, excluded from every rate denominator (paper §VI.B).
 */
OutcomeCounts
foldOutcomeSamples(const std::vector<std::optional<Json>> &samples);

} // namespace vstack

#endif // VSTACK_MACHINE_OUTCOME_H
