/**
 * @file
 * Guest physical memory map and syscall ABI.
 *
 * The guest uses a flat, identity-mapped 16 MiB physical address space
 * with a user/kernel privilege bit.  User mode may only touch the user
 * window; the kernel may touch everything including the MMIO devices.
 */
#ifndef VSTACK_MACHINE_MEMMAP_H
#define VSTACK_MACHINE_MEMMAP_H

#include <cstdint>

namespace vstack
{

namespace memmap
{

constexpr uint32_t RAM_BASE = 0x00000000;
constexpr uint32_t RAM_SIZE = 16u * 1024 * 1024;

/** Reset vector: the machine boots here in kernel mode. */
constexpr uint32_t BOOT_VECTOR = 0x00000080;
/** Kernel image / trap vector. SYSCALL jumps here. */
constexpr uint32_t TRAP_VECTOR = 0x00000100;
constexpr uint32_t KERNEL_TEXT = TRAP_VECTOR;
/** Compiled kernel functions start here (after the trap stub). */
constexpr uint32_t KERNEL_FUNCS = 0x00000180;
/** Scratch slots used by the trap stub to bank user sp/lr. */
constexpr uint32_t KSAVE = 0x00040000;
constexpr uint32_t KERNEL_DATA = 0x00040000;
/** Kernel I/O staging buffer: write() payloads are copied here before
 * the DMA engine pulls them out of the memory hierarchy. */
constexpr uint32_t KERNEL_IOBUF = 0x00060000;
constexpr uint32_t KERNEL_IOBUF_SIZE = 0x00010000;
constexpr uint32_t KERNEL_STACK_TOP = 0x0007fff0;

/** User window: [USER_BASE, RAM_SIZE). */
constexpr uint32_t USER_BASE = 0x00100000;
constexpr uint32_t USER_TEXT = 0x00100000;
constexpr uint32_t USER_DATA = 0x00400000;
constexpr uint32_t USER_STACK_TOP = 0x00fffff0;

/** MMIO window (kernel-only, uncached).  Registers are spaced 16
 * bytes apart so both 4- and 8-byte stores stay naturally aligned. */
constexpr uint32_t MMIO_BASE = 0xfff00000;
constexpr uint32_t MMIO_DMA_SRC = MMIO_BASE + 0x00;
constexpr uint32_t MMIO_DMA_LEN = MMIO_BASE + 0x10;
constexpr uint32_t MMIO_DMA_DOORBELL = MMIO_BASE + 0x20;
constexpr uint32_t MMIO_EXIT_CODE = MMIO_BASE + 0x30;
constexpr uint32_t MMIO_DETECT_CODE = MMIO_BASE + 0x40;
constexpr uint32_t MMIO_CONSOLE = MMIO_BASE + 0x50;
constexpr uint32_t MMIO_TICK = MMIO_BASE + 0x60;

/** True if [addr, addr+bytes) lies inside guest RAM. */
constexpr bool
inRam(uint64_t addr, unsigned bytes)
{
    return addr + bytes <= RAM_SIZE;
}

/** True if addr targets the MMIO window. */
constexpr bool
inMmio(uint64_t addr)
{
    return addr >= MMIO_BASE;
}

/** True if [addr, addr+bytes) is legal for user-mode access. */
constexpr bool
userAccessible(uint64_t addr, unsigned bytes)
{
    return addr >= USER_BASE && addr + bytes <= RAM_SIZE;
}

} // namespace memmap

/** Syscall numbers (in the ISA's syscall-number register). */
enum class Syscall : uint32_t {
    Write = 1,  ///< a0 = buffer, a1 = length; returns length
    Exit = 2,   ///< a0 = exit code
    Detect = 3, ///< a0 = detection site id (software fault tolerance)
};

} // namespace vstack

#endif // VSTACK_MACHINE_MEMMAP_H
