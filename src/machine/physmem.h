/**
 * @file
 * Flat guest physical memory.
 */
#ifndef VSTACK_MACHINE_PHYSMEM_H
#define VSTACK_MACHINE_PHYSMEM_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "isa/program.h"
#include "machine/memmap.h"
#include "support/snapshot.h"

namespace vstack
{

/**
 * Byte-addressable little-endian guest RAM.
 *
 * Every mutation path (write/writeBlock/load/clear) maintains two
 * page-granular dirty maps for the checkpoint machinery:
 *
 *  - digestDirty(): pages whose CRC must be re-hashed before the next
 *    state digest; harvested and cleared at each digest point;
 *  - restoreDirty(): pages modified since the last checkpoint restore;
 *    lets MemImage::restore skip pages that provably still hold the
 *    target image's bytes.
 *
 * Code that mutates RAM through data() directly (the snapshot restore
 * path) is responsible for updating the maps itself.
 */
class PhysMem
{
  public:
    PhysMem()
        : bytes(memmap::RAM_SIZE, 0), digestDirty_(numPages()),
          restoreDirty_(numPages())
    {}

    /** Zero all of memory (between injection runs). */
    void clear()
    {
        std::memset(bytes.data(), 0, bytes.size());
        digestDirty_.markAll();
        restoreDirty_.markAll();
    }

    /** Load a program image. @pre all segments fit in RAM. */
    void load(const Program &prog);

    /** Read `n` little-endian bytes at addr. @pre in range. */
    uint64_t read(uint32_t addr, unsigned n) const
    {
        uint64_t v = 0;
        std::memcpy(&v, bytes.data() + addr, n);
        return v;
    }

    /** Write the low `n` bytes of v at addr. @pre in range. */
    void write(uint32_t addr, uint64_t v, unsigned n)
    {
        std::memcpy(bytes.data() + addr, &v, n);
        touch(addr, n);
    }

    /** Bulk copy out of RAM. @pre range valid. */
    void readBlock(uint32_t addr, uint8_t *dst, size_t n) const
    {
        std::memcpy(dst, bytes.data() + addr, n);
    }

    /** Bulk copy into RAM. @pre range valid. */
    void writeBlock(uint32_t addr, const uint8_t *src, size_t n)
    {
        std::memcpy(bytes.data() + addr, src, n);
        touch(addr, n);
    }

    uint8_t *data() { return bytes.data(); }
    const uint8_t *data() const { return bytes.data(); }
    size_t size() const { return bytes.size(); }

    size_t numPages() const { return memmap::RAM_SIZE >> snap::PAGE_SHIFT; }
    snap::DirtyMap &digestDirty() { return digestDirty_; }
    snap::DirtyMap &restoreDirty() { return restoreDirty_; }

  private:
    void touch(uint32_t addr, size_t n)
    {
        const size_t first = addr >> snap::PAGE_SHIFT;
        const size_t last = (addr + n - 1) >> snap::PAGE_SHIFT;
        for (size_t p = first; p <= last; ++p) {
            digestDirty_.mark(p);
            restoreDirty_.mark(p);
        }
    }

    std::vector<uint8_t> bytes;
    snap::DirtyMap digestDirty_;
    snap::DirtyMap restoreDirty_;
};

} // namespace vstack

#endif // VSTACK_MACHINE_PHYSMEM_H
