/**
 * @file
 * Flat guest physical memory.
 */
#ifndef VSTACK_MACHINE_PHYSMEM_H
#define VSTACK_MACHINE_PHYSMEM_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "isa/program.h"
#include "machine/memmap.h"

namespace vstack
{

/** Byte-addressable little-endian guest RAM. */
class PhysMem
{
  public:
    PhysMem() : bytes(memmap::RAM_SIZE, 0) {}

    /** Zero all of memory (between injection runs). */
    void clear() { std::memset(bytes.data(), 0, bytes.size()); }

    /** Load a program image. @pre all segments fit in RAM. */
    void load(const Program &prog);

    /** Read `n` little-endian bytes at addr. @pre in range. */
    uint64_t read(uint32_t addr, unsigned n) const
    {
        uint64_t v = 0;
        std::memcpy(&v, bytes.data() + addr, n);
        return v;
    }

    /** Write the low `n` bytes of v at addr. @pre in range. */
    void write(uint32_t addr, uint64_t v, unsigned n)
    {
        std::memcpy(bytes.data() + addr, &v, n);
    }

    /** Bulk copy out of RAM. @pre range valid. */
    void readBlock(uint32_t addr, uint8_t *dst, size_t n) const
    {
        std::memcpy(dst, bytes.data() + addr, n);
    }

    /** Bulk copy into RAM. @pre range valid. */
    void writeBlock(uint32_t addr, const uint8_t *src, size_t n)
    {
        std::memcpy(bytes.data() + addr, src, n);
    }

    uint8_t *data() { return bytes.data(); }
    const uint8_t *data() const { return bytes.data(); }
    size_t size() const { return bytes.size(); }

  private:
    std::vector<uint8_t> bytes;
};

} // namespace vstack

#endif // VSTACK_MACHINE_PHYSMEM_H
