#include "outcome.h"

#include "machine/devices.h"

namespace vstack
{

Outcome
classifyRun(StopReason stop, bool outputMatchesGolden)
{
    switch (stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    return outputMatchesGolden ? Outcome::Masked : Outcome::Sdc;
}

Outcome
classifyDeviceRun(StopReason stop, const DeviceOutput &out,
                  const std::vector<uint8_t> &goldenDma,
                  uint32_t goldenExitCode)
{
    return classifyRun(stop, out.dma == goldenDma &&
                                 out.exitCode == goldenExitCode);
}

OutcomeCounts
foldOutcomeSamples(const std::vector<std::optional<Json>> &samples)
{
    OutcomeCounts counts;
    for (const auto &s : samples) {
        if (s)
            counts.add(static_cast<Outcome>(s->asInt()));
        else
            ++counts.injectorErrors;
    }
    return counts;
}

} // namespace vstack
