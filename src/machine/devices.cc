#include "devices.h"

#include <algorithm>

#include "machine/memmap.h"

namespace vstack
{

bool
DeviceHub::store(uint32_t addr, uint64_t value, uint64_t now)
{
    using namespace memmap;
    const uint32_t v32 = static_cast<uint32_t>(value);
    switch (addr) {
      case MMIO_DMA_SRC:
        dmaSrc = v32;
        return true;
      case MMIO_DMA_LEN:
        // The length register is 20 bits wide: a fault-corrupted
        // descriptor cannot ask the engine for more than 1 MiB.
        dmaLen = v32 & 0xfffff;
        return true;
      case MMIO_DMA_DOORBELL:
        queue.push_back({dmaSrc, dmaLen, now + dmaDelay});
        return true;
      case MMIO_EXIT_CODE:
        out.exitCode = v32;
        out.exited = true;
        return true;
      case MMIO_DETECT_CODE:
        out.detectCode = v32;
        out.detected = true;
        return true;
      case MMIO_CONSOLE:
        out.console += static_cast<char>(v32 & 0xff);
        return true;
      default:
        return false;
    }
}

bool
DeviceHub::load(uint32_t addr, uint64_t now, uint64_t &value) const
{
    using namespace memmap;
    switch (addr) {
      case MMIO_TICK:
        value = now;
        return true;
      case MMIO_EXIT_CODE:
        value = out.exitCode;
        return true;
      default:
        return false;
    }
}

void
DeviceHub::tick(uint64_t now)
{
    while (!queue.empty() && queue.front().readyAt <= now) {
        drain(queue.front());
        queue.pop_front();
    }
}

uint64_t
DeviceHub::nextReady() const
{
    return queue.empty() ? UINT64_MAX : queue.front().readyAt;
}

void
DeviceHub::flush()
{
    while (!queue.empty()) {
        drain(queue.front());
        queue.pop_front();
    }
}

void
DeviceHub::drain(const Descriptor &d)
{
    if (d.len == 0)
        return;
    // Cap captured output: a fault-corrupted guest can otherwise ring
    // the doorbell arbitrarily often with maximum-length descriptors.
    const size_t old = out.dma.size();
    if (old >= captureCap) {
        out.truncated = true;
        return;
    }
    const size_t len = std::min<size_t>(d.len, captureCap - old);
    if (len < d.len)
        out.truncated = true;
    out.dma.resize(old + len);
    reader(d.src, out.dma.data() + old, len);
}

void
DeviceHub::reset()
{
    dmaSrc = 0;
    dmaLen = 0;
    queue.clear();
    out = DeviceOutput{};
}

void
DeviceHub::saveState(snap::ByteSink &s, bool digest) const
{
    s.u32(dmaSrc);
    s.u32(dmaLen);
    s.u64(queue.size());
    for (const auto &d : queue) {
        s.u32(d.src);
        s.u32(d.len);
        s.u64(d.readyAt);
    }
    s.b(out.truncated);
    if (digest)
        return;
    s.u64(out.dma.size());
    s.bytes(out.dma.data(), out.dma.size());
    s.str(out.console);
    s.u32(out.exitCode);
    s.b(out.exited);
    s.b(out.detected);
    s.u32(out.detectCode);
}

void
DeviceHub::loadState(snap::ByteSource &s)
{
    dmaSrc = s.u32();
    dmaLen = s.u32();
    queue.clear();
    const uint64_t qn = s.u64();
    for (uint64_t i = 0; i < qn; ++i) {
        Descriptor d;
        d.src = s.u32();
        d.len = s.u32();
        d.readyAt = s.u64();
        queue.push_back(d);
    }
    out.truncated = s.b();
    out.dma.resize(s.u64());
    s.bytes(out.dma.data(), out.dma.size());
    out.console = s.str();
    out.exitCode = s.u32();
    out.exited = s.b();
    out.detected = s.b();
    out.detectCode = s.u32();
}

} // namespace vstack
