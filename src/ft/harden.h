/**
 * @file
 * Software-based fault tolerance: AN-encoding + duplicated
 * instructions (the paper's Section VI case-study technique).
 *
 * An IR-to-IR pass maintains, for every virtual register `v`, a
 * shadow register holding `v * A` (the AN code word):
 *
 *  - additive operations flow natively in the AN domain
 *    (shadow(a+b) = shadow(a) + shadow(b));
 *  - non-AN-closed operations (multiplies, divisions, bitwise ops,
 *    shifts, comparisons, loads, address computations) are
 *    *duplicated*: operands are decoded (signed divide by A), the
 *    operation re-executed, and the result re-encoded;
 *  - at every point where a value leaves the protected dataflow —
 *    store address and value, conditional-branch condition, call and
 *    syscall arguments, return values — the primary value is
 *    re-encoded and compared against its shadow; a mismatch branches
 *    to a detector that raises the `detect` syscall.
 *
 * Like the paper's technique, only application code is protected:
 * runtime-library functions (and of course the kernel, which is not
 * even visible at this layer) run unhardened, and call results
 * re-enter the protected domain unchecked.  Decoding multiplies by
 * A^-1 mod 2^xlen (A is odd, so encoding is a bijection), making the
 * transform exact for every value on both targets.
 */
#ifndef VSTACK_FT_HARDEN_H
#define VSTACK_FT_HARDEN_H

#include <set>
#include <string>

#include "compiler/ir.h"

namespace vstack
{

/** Options for the hardening pass. */
struct HardenOptions
{
    /** The AN-code multiplier (default from the AN-encoding
     *  literature; any odd constant < 2^16 works). */
    int64_t A = 58659;
    /** Function names to leave unprotected (runtime library). */
    std::set<std::string> skip;
    /** Also verify store addresses (not only stored values). */
    bool checkAddresses = true;
};

/** Return a hardened copy of the module. */
ir::Module hardenModule(const ir::Module &m, const HardenOptions &opts);

/** Convenience: options with the runtime library skipped. */
HardenOptions defaultHardenOptions();

} // namespace vstack

#endif // VSTACK_FT_HARDEN_H
