#include "harden.h"

#include <cassert>

#include "compiler/compile.h"
#include "machine/memmap.h"
#include "support/logging.h"

namespace vstack
{

using ir::Block;
using ir::Func;
using ir::Inst;
using ir::IrOp;
using ir::Value;

namespace
{

/** Sentinel branch target meaning "the detector block" (fixed up at
 *  the end of the function transform). */
constexpr int DETECT_TARGET = -2;

/** Modular inverse of an odd constant mod 2^bits (Newton). */
uint64_t
modInverse(uint64_t a, int bits)
{
    uint64_t x = a; // 5-bit seed, doubled precision per step
    for (int i = 0; i < 6; ++i)
        x *= 2 - a * x;
    if (bits < 64)
        x &= (1ull << bits) - 1;
    return x;
}

class FuncHardener
{
  public:
    FuncHardener(const Func &src, const HardenOptions &opts, int siteId,
                 int xlen)
        : src(src), opts(opts), siteId(siteId),
          aInv(static_cast<int64_t>(
              modInverse(static_cast<uint64_t>(opts.A), xlen)))
    {}

    Func run()
    {
        out.name = src.name;
        out.numParams = src.numParams;
        out.hasResult = src.hasResult;
        out.localArrays = src.localArrays;
        out.numVregs = src.numVregs;
        shadow.assign(static_cast<size_t>(src.numVregs), -1);

        // One output block per original block start.
        blockMap.resize(src.blocks.size());

        for (size_t bi = 0; bi < src.blocks.size(); ++bi) {
            startBlock(static_cast<int>(bi));
            if (bi == 0)
                encodeParams();
            for (const Inst &inst : src.blocks[bi].insts)
                transform(inst);
        }

        appendDetector();
        fixupTargets();
        return std::move(out);
    }

  private:
    // ---- block plumbing -------------------------------------------------
    void startBlock(int origIdx)
    {
        out.blocks.emplace_back();
        cur = static_cast<int>(out.blocks.size()) - 1;
        blockMap[origIdx] = cur;
    }

    void emit(Inst inst) { out.blocks[cur].insts.push_back(std::move(inst)); }

    int newVreg() { return out.numVregs++; }

    int shadowOf(int v)
    {
        if (shadow[v] < 0)
            shadow[v] = newVreg();
        return shadow[v];
    }

    Value shadowVal(const Value &v)
    {
        if (v.isConst)
            return Value::imm(static_cast<int64_t>(
                static_cast<uint64_t>(v.konst) *
                static_cast<uint64_t>(opts.A)));
        return Value::reg(shadowOf(v.vreg));
    }

    Inst bin(IrOp op, int dst, Value a, Value b)
    {
        Inst i;
        i.op = op;
        i.dst = dst;
        i.hasA = i.hasB = true;
        i.a = a;
        i.b = b;
        return i;
    }

    /**
     * Decode a shadow back to the plain domain.  A is odd, so
     * multiplication by A is a bijection mod 2^xlen and the decode
     * multiplies by the modular inverse — exact for every value, and
     * a corrupted shadow still decodes to a wrong plain value that
     * the re-encode check catches.
     */
    Value decode(const Value &v)
    {
        if (v.isConst)
            return v;
        const int raw = newVreg();
        emit(bin(IrOp::Mul, raw, Value::reg(shadowOf(v.vreg)),
                 Value::imm(aInv)));
        return Value::reg(raw);
    }

    /** Re-encode a plain value into a shadow register. */
    void encodeInto(int shadowReg, Value plain)
    {
        emit(bin(IrOp::Mul, shadowReg, plain, Value::imm(opts.A)));
    }

    void encodeParams()
    {
        for (int p = 0; p < src.numParams; ++p)
            encodeInto(shadowOf(p), Value::reg(p));
    }

    /**
     * Verify a primary value against its shadow; control continues in
     * a fresh block on success and jumps to the detector on mismatch.
     */
    void check(const Value &v)
    {
        if (v.isConst)
            return;
        const int enc = newVreg();
        emit(bin(IrOp::Mul, enc, v, Value::imm(opts.A)));
        const int cmp = newVreg();
        emit(bin(IrOp::CmpNe, cmp, Value::reg(enc),
                 Value::reg(shadowOf(v.vreg))));

        Inst br;
        br.op = IrOp::CondBr;
        br.hasA = true;
        br.a = Value::reg(cmp);
        br.target0 = DETECT_TARGET;
        br.target1 = static_cast<int>(out.blocks.size()); // next block
        finalTargets.insert(
            {cur, static_cast<int>(out.blocks[cur].insts.size())});
        emit(std::move(br));

        out.blocks.emplace_back();
        cur = static_cast<int>(out.blocks.size()) - 1;
    }

    // ---- per-instruction transform ---------------------------------------
    void transform(const Inst &inst)
    {
        switch (inst.op) {
          case IrOp::Add:
          case IrOp::Sub:
            // AN-closed: shadows flow natively.
            emit(inst);
            emit(bin(inst.op, shadowOf(inst.dst), shadowVal(inst.a),
                     shadowVal(inst.b)));
            return;
          case IrOp::Mov:
            emit(inst);
            {
                Inst m;
                m.op = IrOp::Mov;
                m.dst = shadowOf(inst.dst);
                m.hasA = true;
                m.a = shadowVal(inst.a);
                emit(std::move(m));
            }
            return;
          case IrOp::Mul:
          case IrOp::SDiv:
          case IrOp::UDiv:
          case IrOp::SRem:
          case IrOp::URem:
          case IrOp::And:
          case IrOp::Or:
          case IrOp::Xor:
          case IrOp::Shl:
          case IrOp::LShr:
          case IrOp::AShr:
          case IrOp::CmpEq:
          case IrOp::CmpNe:
          case IrOp::CmpSLt:
          case IrOp::CmpSLe:
          case IrOp::CmpSGt:
          case IrOp::CmpSGe:
          case IrOp::CmpULt:
          case IrOp::CmpUGe: {
            // Duplicated computation: decode, re-execute, re-encode.
            emit(inst);
            Value araw = decode(inst.a);
            Value braw = decode(inst.b);
            const int dup = newVreg();
            emit(bin(inst.op, dup, araw, braw));
            encodeInto(shadowOf(inst.dst), Value::reg(dup));
            return;
          }
          case IrOp::Load: {
            emit(inst);
            // Duplicate the load through the decoded address.
            Value araw = decode(inst.a);
            Inst dup = inst;
            dup.dst = newVreg();
            dup.a = araw;
            const int dupDst = dup.dst;
            emit(std::move(dup));
            encodeInto(shadowOf(inst.dst), Value::reg(dupDst));
            return;
          }
          case IrOp::AddrGlobal:
          case IrOp::AddrLocal: {
            emit(inst);
            Inst dup = inst;
            dup.dst = newVreg();
            const int dupDst = dup.dst;
            emit(std::move(dup));
            encodeInto(shadowOf(inst.dst), Value::reg(dupDst));
            return;
          }
          case IrOp::CacheClean:
            emit(inst);
            return;
          case IrOp::Store:
            // Values leaving the protected domain are verified.
            if (opts.checkAddresses)
                check(inst.a);
            check(inst.b);
            emit(inst);
            return;
          case IrOp::CondBr: {
            check(inst.a);
            emitOrigTerminator(inst);
            return;
          }
          case IrOp::Br:
            emitOrigTerminator(inst);
            return;
          case IrOp::Ret:
            if (inst.hasA)
                check(inst.a);
            emit(inst);
            return;
          case IrOp::Call: {
            for (const Value &arg : inst.args)
                check(arg);
            emit(inst);
            if (inst.dst >= 0)
                encodeInto(shadowOf(inst.dst), Value::reg(inst.dst));
            return;
          }
          case IrOp::Syscall: {
            for (const Value &arg : inst.args)
                check(arg);
            emit(inst);
            if (inst.dst >= 0)
                encodeInto(shadowOf(inst.dst), Value::reg(inst.dst));
            return;
          }
        }
        panic("unhandled IR op in hardener");
    }

    /** Emit a terminator whose targets are original block indices
     *  (fixed up to output indices at the end). */
    void emitOrigTerminator(const Inst &inst)
    {
        origTargets.insert(
            {cur, static_cast<int>(out.blocks[cur].insts.size())});
        emit(inst);
    }

    void appendDetector()
    {
        out.blocks.emplace_back();
        detectIdx = static_cast<int>(out.blocks.size()) - 1;
        Inst det;
        det.op = IrOp::Syscall;
        det.dst = newVreg();
        det.sysNr = static_cast<uint32_t>(Syscall::Detect);
        det.args.push_back(Value::imm(siteId));
        det.args.push_back(Value::imm(0));
        out.blocks[detectIdx].insts.push_back(std::move(det));
        // The detect syscall halts the run; self-loop as terminator.
        Inst loop;
        loop.op = IrOp::Br;
        loop.target0 = detectIdx;
        out.blocks[detectIdx].insts.push_back(std::move(loop));
    }

    void fixupTargets()
    {
        for (size_t bi = 0; bi < out.blocks.size(); ++bi) {
            for (size_t ii = 0; ii < out.blocks[bi].insts.size(); ++ii) {
                Inst &inst = out.blocks[bi].insts[ii];
                if (!inst.isTerminator())
                    continue;
                const std::pair<int, int> key = {static_cast<int>(bi),
                                                 static_cast<int>(ii)};
                if (origTargets.count(key)) {
                    if (inst.op == IrOp::Br || inst.op == IrOp::CondBr)
                        inst.target0 = blockMap[inst.target0];
                    if (inst.op == IrOp::CondBr)
                        inst.target1 = blockMap[inst.target1];
                } else if (finalTargets.count(key)) {
                    if (inst.target0 == DETECT_TARGET)
                        inst.target0 = detectIdx;
                    if (inst.target1 == DETECT_TARGET)
                        inst.target1 = detectIdx;
                }
            }
        }
    }

    const Func &src;
    const HardenOptions &opts;
    const int siteId;
    const int64_t aInv;
    Func out;
    int cur = 0;
    int detectIdx = -1;
    std::vector<int> shadow;
    std::vector<int> blockMap;
    std::set<std::pair<int, int>> origTargets;  ///< original targets
    std::set<std::pair<int, int>> finalTargets; ///< check branches
};

} // namespace

HardenOptions
defaultHardenOptions()
{
    HardenOptions opts;
    for (const std::string &name : mcl::runtimeFuncNames())
        opts.skip.insert(name);
    return opts;
}

ir::Module
hardenModule(const ir::Module &m, const HardenOptions &opts)
{
    ir::Module out;
    out.xlen = m.xlen;
    out.globals = m.globals;
    out.funcIndex = m.funcIndex;
    out.funcs.reserve(m.funcs.size());
    for (size_t fi = 0; fi < m.funcs.size(); ++fi) {
        const Func &f = m.funcs[fi];
        if (opts.skip.count(f.name)) {
            out.funcs.push_back(f);
            continue;
        }
        FuncHardener h(f, opts, static_cast<int>(fi) + 1, m.xlen);
        out.funcs.push_back(h.run());
    }
    const std::string err = ir::verify(out);
    if (!err.empty())
        fatal("hardened IR failed verification: %s", err.c_str());
    return out;
}

} // namespace vstack
