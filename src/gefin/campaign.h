/**
 * @file
 * Microarchitecture-level fault-injection campaigns (GeFIN analog).
 *
 * One campaign = N statistically sampled single-bit transient faults
 * into one structure of one core running one workload.  Each
 * injection is a full-system run to completion; the campaign yields
 * both the cross-layer outcome statistics (AVF) and the
 * first-visibility statistics (HVF + FPM distribution), exactly as
 * the paper derives both metrics from the same infrastructure.
 */
#ifndef VSTACK_GEFIN_CAMPAIGN_H
#define VSTACK_GEFIN_CAMPAIGN_H

#include <functional>
#include <string>

#include "machine/fpm.h"
#include "machine/outcome.h"
#include "uarch/core.h"

namespace vstack
{

/** Aggregate result of one microarchitectural campaign. */
struct UarchCampaignResult
{
    OutcomeCounts outcomes; ///< AVF classification per injection
    FpmCounts fpms;         ///< FPM of faults that became visible
    uint64_t hwMasked = 0;  ///< never became architecturally visible
    uint64_t samples = 0;

    /** AVF = (SDC + Crash) / N (detections excluded, paper §VI.B). */
    double avf() const { return outcomes.vulnerability(); }
    /** HVF = architecturally visible fraction. */
    double hvf() const
    {
        return samples ? static_cast<double>(fpms.total()) / samples : 0.0;
    }
};

/** Golden (fault-free) cycle-level run data. */
struct UarchGolden
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t kernelInsts = 0;
    uint64_t kernelCycles = 0;
    std::vector<uint8_t> dma;
    uint32_t exitCode = 0;
};

/**
 * Campaign driver for one (core, system image) pair.  The simulator
 * instance is reused across injections; each run reloads the image.
 */
class UarchCampaign
{
  public:
    /** Runs the golden simulation on construction (fatal on failure). */
    UarchCampaign(const CoreConfig &core, Program image);

    const UarchGolden &golden() const { return golden_; }
    const CoreConfig &core() const { return core_; }

    /** Run one injection and classify it. */
    Outcome runOne(const FaultSite &site, Visibility &vis);

    /**
     * Run a full campaign: n uniformly sampled (cycle, bit) faults in
     * `structure`.  Deterministic for a given seed.
     *
     * @param progress  optional callback invoked after each sample
     */
    UarchCampaignResult
    run(Structure structure, size_t n, uint64_t seed,
        const std::function<void(size_t)> &progress = nullptr);

  private:
    CoreConfig core_;
    Program image;
    CycleSim sim;
    UarchGolden golden_;
};

} // namespace vstack

#endif // VSTACK_GEFIN_CAMPAIGN_H
