/**
 * @file
 * Microarchitecture-level fault-injection campaigns (GeFIN analog).
 *
 * One campaign = N statistically sampled single-bit transient faults
 * into one structure of one core running one workload.  Each
 * injection is a full-system run to completion; the campaign yields
 * both the cross-layer outcome statistics (AVF) and the
 * first-visibility statistics (HVF + FPM distribution), exactly as
 * the paper derives both metrics from the same infrastructure.
 *
 * Campaigns execute through the shared engine in src/exec: the fault
 * list is sampled up front from per-sample RNG streams, so results
 * are bit-identical at any `jobs` count, simulator failures are
 * contained per sample, and completed samples can be journaled for
 * crash-resume.
 *
 * Campaigns are checkpoint-accelerated by default (CheckpointPolicy):
 * a second golden pass records evenly spaced full-state checkpoints
 * plus a denser digest grid, each injection restores the nearest
 * checkpoint below its injection cycle instead of replaying from
 * boot, samples are dispatched in injection-cycle order for restore
 * locality, and a post-injection run terminates as soon as its state
 * provably reconverges with the golden trajectory.  Every sample
 * record is bit-identical to the cold path by construction;
 * VSTACK_VERIFY_CHECKPOINT re-runs a deterministic subset cold and
 * fails the campaign on any divergence.
 */
#ifndef VSTACK_GEFIN_CAMPAIGN_H
#define VSTACK_GEFIN_CAMPAIGN_H

#include <mutex>
#include <string>
#include <vector>

#include "exec/driver.h"
#include "exec/executor.h"
#include "fault/model.h"
#include "machine/fpm.h"
#include "machine/outcome.h"
#include "uarch/core.h"

namespace vstack
{

/** Aggregate result of one microarchitectural campaign. */
struct UarchCampaignResult
{
    OutcomeCounts outcomes; ///< AVF classification per injection
    FpmCounts fpms;         ///< FPM of faults that became visible
    uint64_t hwMasked = 0;  ///< never became architecturally visible
    uint64_t samples = 0;   ///< classified samples (errors excluded)

    /** AVF = (SDC + Crash) / N (detections excluded, paper §VI.B). */
    double avf() const { return outcomes.vulnerability(); }
    /** HVF = architecturally visible fraction. */
    double hvf() const
    {
        return samples ? static_cast<double>(fpms.total()) / samples : 0.0;
    }
};

/** Golden (fault-free) cycle-level run data. */
struct UarchGolden
{
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t kernelInsts = 0;
    uint64_t kernelCycles = 0;
    std::vector<uint8_t> dma;
    uint32_t exitCode = 0;
};

/**
 * Campaign driver for one (core, system image) pair.  The calling
 * thread's simulator instance is reused across serial injections;
 * parallel campaigns give each worker its own simulator.  One
 * campaign's golden run and trace are shared by every structure
 * campaign run against it.
 */
class UarchCampaign
{
  public:
    /** Runs the golden simulation on construction.
     *  @throws GoldenRunError if it does not exit cleanly */
    UarchCampaign(const CoreConfig &core, Program image);

    const UarchGolden &golden() const { return golden_; }
    const CoreConfig &core() const { return core_; }

    /** Per-injection watchdog budget, in cycles relative to the
     *  golden run (default: 4x golden + 50k). */
    void setWatchdog(const exec::WatchdogBudget &wd) { watchdog = wd; }

    /** Campaign-accelerator policy (defaults: acceleration on). */
    void setCheckpointPolicy(const exec::CheckpointPolicy &p)
    {
        policy_ = p;
    }
    const exec::CheckpointPolicy &checkpointPolicy() const
    {
        return policy_;
    }

    /**
     * Sample the campaign fault list for one structure: per-sample
     * forked RNG streams, injection cycles uniform over the golden
     * run's live cycles.  The list run() uses; public so tests can
     * pin the site distribution.  Equivalent to sampleFaults() with
     * the single-bit model, flattened (kept for byte-compat tests).
     */
    std::vector<FaultSite> sampleSites(Structure structure, size_t n,
                                       uint64_t seed) const;

    /**
     * Sample the fault list through a fault model (null = the
     * single-bit default).  The master stream is seeded exactly as
     * the legacy sampler seeded it, so the default model reproduces
     * sampleSites() draw for draw.
     */
    std::vector<fault::UarchFault>
    sampleFaults(const fault::FaultModel *model, Structure structure,
                 size_t n, uint64_t seed) const;

    /**
     * Record the golden checkpoint/digest trace (second golden pass)
     * if the policy enables acceleration and it is not recorded yet.
     * run() calls this lazily; the trace is shared across structures.
     * Thread-safe: concurrent structure drivers sharing this campaign
     * (the suite scheduler) record once and block until it is done.
     * @throws GoldenRunError if the recording pass does not reproduce
     *         the construction-time golden run
     */
    void ensureTrace();

    /** The recorded golden trace (interval 0 until ensureTrace()). */
    const UarchTrace &trace() const { return trace_; }

    /** Run one injection on the campaign's own simulator. */
    Outcome runOne(const FaultSite &site, Visibility &vis);

    /** Run one injection on a caller-provided simulator (workers):
     *  checkpoint-accelerated when a trace is recorded and the policy
     *  enables it, cold otherwise. */
    Outcome runOneOn(CycleSim &worker, const FaultSite &site,
                     Visibility &vis) const;

    /** Run one injection cold — from boot, no fast-forward, no early
     *  termination (the VSTACK_VERIFY_CHECKPOINT reference path). */
    Outcome runOneColdOn(CycleSim &worker, const FaultSite &site,
                         Visibility &vis) const;

    /** Run one (possibly multi-site) fault: restore below the first
     *  site's cycle, schedule every site, run.  Single-site faults are
     *  exactly runOneOn(). */
    Outcome runFaultOn(CycleSim &worker, const fault::UarchFault &fault,
                       Visibility &vis) const;

    /** Cold counterpart of runFaultOn(). */
    Outcome runFaultColdOn(CycleSim &worker,
                           const fault::UarchFault &fault,
                           Visibility &vis) const;

    /**
     * Run a full campaign: n faults in `structure`, sampled by
     * `model` (null = the paper's uniform single-bit model).
     * Deterministic for a given seed at any job count.
     */
    UarchCampaignResult run(Structure structure, size_t n, uint64_t seed,
                            const exec::ExecConfig &ec = {},
                            const fault::FaultModel *model = nullptr);

  private:
    Outcome classify(const UarchRunResult &r) const;

    CoreConfig core_;
    Program image;
    CycleSim sim;
    UarchGolden golden_;
    exec::WatchdogBudget watchdog;
    exec::CheckpointPolicy policy_;
    UarchTrace trace_;
    std::mutex traceMu; ///< serializes the recording pass
};

/**
 * LayerDriver adapter: one structure campaign of a UarchCampaign.
 * prepare() records the shared trace and samples the fault list; the
 * journal payload is the {"o","v"[,"f","c"]} sample record the layer
 * has always used, so journals and stores stay byte-compatible.
 */
class UarchDriver final : public exec::LayerDriver
{
  public:
    /** @param model  fault model sampling the list (null = single-bit
     *                default, byte-identical to the legacy driver) */
    UarchDriver(UarchCampaign &campaign, Structure structure, size_t n,
                uint64_t seed,
                std::shared_ptr<const fault::FaultModel> model = nullptr);

    const char *layerName() const override { return "uarch"; }
    size_t samples() const override { return n; }
    void prepare() override;
    std::unique_ptr<Ctx> makeCtx() const override;
    Json runSample(Ctx &ctx, size_t i) const override;
    Json runSampleCold(Ctx &ctx, size_t i) const override;
    bool scheduled() const override;
    uint64_t scheduleKey(size_t i) const override;
    double verifyPercent() const override;
    std::string describeSample(size_t i) const override;

  private:
    UarchCampaign &campaign;
    Structure structure;
    size_t n;
    uint64_t seed;
    std::shared_ptr<const fault::FaultModel> model;
    std::vector<fault::UarchFault> faults; ///< sampled by prepare()
};

/** Fold per-sample driver payloads (index order) into the campaign
 *  aggregate; nullopt samples count as quarantined injector errors. */
UarchCampaignResult
foldUarchSamples(const std::vector<std::optional<Json>> &samples);

} // namespace vstack

#endif // VSTACK_GEFIN_CAMPAIGN_H
