#include "campaign.h"

#include <memory>

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

UarchCampaign::UarchCampaign(const CoreConfig &core, Program image)
    : core_(core), image(std::move(image)), sim(core)
{
    sim.load(this->image);
    UarchRunResult r = sim.run(400'000'000);
    if (r.stop != StopReason::Exited) {
        throw GoldenRunError(
            strprintf("golden cycle-level run failed on %s: %s",
                      core.name.c_str(), r.excMsg.c_str()));
    }
    golden_.cycles = r.cycles;
    golden_.insts = r.insts;
    golden_.kernelInsts = r.kernelInsts;
    golden_.kernelCycles = r.kernelCycles;
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
}

Outcome
UarchCampaign::runOne(const FaultSite &site, Visibility &vis)
{
    return runOneOn(sim, site, vis);
}

Outcome
UarchCampaign::runOneOn(CycleSim &worker, const FaultSite &site,
                        Visibility &vis) const
{
    worker.load(image);
    worker.scheduleInjection(site);
    UarchRunResult r = worker.run(watchdog.limitFor(golden_.cycles));
    vis = r.visibility;

    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output.dma != golden_.dma || r.output.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

namespace
{

/** Per-sample journal payload of one microarchitectural injection. */
struct UarchSample
{
    Outcome out = Outcome::Masked;
    Visibility vis;
};

Json
sampleToJson(const UarchSample &s)
{
    Json j = Json::object();
    j.set("o", static_cast<int>(s.out));
    j.set("v", s.vis.visible);
    if (s.vis.visible) {
        j.set("f", static_cast<int>(s.vis.fpm));
        j.set("c", s.vis.cycle);
    }
    return j;
}

UarchSample
sampleFromJson(const Json &j)
{
    UarchSample s;
    s.out = static_cast<Outcome>(j.at("o").asInt());
    s.vis.visible = j.at("v").asBool();
    if (s.vis.visible) {
        s.vis.fpm = static_cast<Fpm>(j.at("f").asInt());
        s.vis.cycle = static_cast<uint64_t>(j.at("c").asInt());
    }
    return s;
}

} // namespace

UarchCampaignResult
UarchCampaign::run(Structure structure, size_t n, uint64_t seed,
                   const exec::ExecConfig &ec)
{
    const uint64_t bits = sim.structureBits(structure);
    Rng master(seed ^ (static_cast<uint64_t>(structure) << 56));

    // Sample the fault list up front; each sample's stream is the i-th
    // fork of the master, a pure function of (seed, i), so the list —
    // and hence the campaign — is identical at every thread count.
    std::vector<FaultSite> sites(n);
    for (FaultSite &site : sites) {
        Rng rng = master.fork();
        site.structure = structure;
        site.cycle = 1 + rng.uniform(golden_.cycles);
        site.bit = rng.uniform(bits);
    }

    auto samples = exec::runSamples<UarchSample>(
        n, ec,
        [this] { return std::make_unique<CycleSim>(core_); },
        [this, &sites](CycleSim &worker, size_t i) {
            UarchSample s;
            s.out = runOneOn(worker, sites[i], s.vis);
            return s;
        },
        sampleToJson, sampleFromJson);

    // Fold in index order: aggregation is deterministic by
    // construction, independent of completion order.
    UarchCampaignResult res;
    for (const auto &s : samples) {
        if (!s) {
            ++res.outcomes.injectorErrors;
            continue;
        }
        res.outcomes.add(s->out);
        if (s->vis.visible)
            res.fpms.add(s->vis.fpm);
        else
            ++res.hwMasked;
    }
    res.samples = n - res.outcomes.injectorErrors;
    return res;
}

} // namespace vstack
