#include "campaign.h"

#include <algorithm>
#include <memory>

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

UarchCampaign::UarchCampaign(const CoreConfig &core, Program image)
    : core_(core), image(std::move(image)), sim(core)
{
    sim.load(this->image);
    UarchRunResult r = sim.run(exec::goldenRunBudget(watchdog));
    if (r.stop != StopReason::Exited) {
        throw GoldenRunError(
            strprintf("golden cycle-level run failed on %s: %s",
                      core.name.c_str(), r.excMsg.c_str()));
    }
    golden_.cycles = r.cycles;
    golden_.insts = r.insts;
    golden_.kernelInsts = r.kernelInsts;
    golden_.kernelCycles = r.kernelCycles;
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
}

void
UarchCampaign::ensureTrace()
{
    if (!policy_.enabled || trace_.recorded())
        return;
    sim.load(image);
    // The recording budget must cover the known golden length even if
    // the per-injection watchdog was tightened after construction.
    UarchRunResult r = sim.runRecording(
        std::max(exec::goldenRunBudget(watchdog), golden_.cycles + 1),
        trace_, policy_.digestInterval(golden_.cycles),
        std::max(1u, policy_.digestsPerCheckpoint));
    // The recording pass must retrace the construction-time golden run
    // exactly — anything else means the simulator is nondeterministic
    // and no checkpoint can be trusted.
    if (r.stop != StopReason::Exited || r.cycles != golden_.cycles ||
        r.output.dma != golden_.dma ||
        r.output.exitCode != golden_.exitCode) {
        throw GoldenRunError(strprintf(
            "golden recording pass diverged from the golden run on %s",
            core_.name.c_str()));
    }
}

Outcome
UarchCampaign::classify(const UarchRunResult &r) const
{
    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output.dma != golden_.dma || r.output.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

Outcome
UarchCampaign::runOne(const FaultSite &site, Visibility &vis)
{
    ensureTrace();
    return runOneOn(sim, site, vis);
}

Outcome
UarchCampaign::runOneOn(CycleSim &worker, const FaultSite &site,
                        Visibility &vis) const
{
    if (!policy_.enabled || !trace_.recorded())
        return runOneColdOn(worker, site, vis);

    worker.restore(trace_.nearestBelow(site.cycle).state);
    worker.scheduleInjection(site);
    UarchRunResult r = worker.runWithTrace(
        watchdog.limitFor(golden_.cycles), trace_, policy_.earlyStop);
    vis = r.visibility;
    return classify(r);
}

Outcome
UarchCampaign::runOneColdOn(CycleSim &worker, const FaultSite &site,
                            Visibility &vis) const
{
    worker.load(image);
    worker.scheduleInjection(site);
    UarchRunResult r = worker.run(watchdog.limitFor(golden_.cycles));
    vis = r.visibility;
    return classify(r);
}

std::vector<FaultSite>
UarchCampaign::sampleSites(Structure structure, size_t n,
                           uint64_t seed) const
{
    const uint64_t bits = sim.structureBits(structure);
    Rng master(seed ^ (static_cast<uint64_t>(structure) << 56));

    // Sample the fault list up front; each sample's stream is the i-th
    // fork of the master, a pure function of (seed, i), so the list —
    // and hence the campaign — is identical at every thread count.
    std::vector<FaultSite> sites(n);
    for (FaultSite &site : sites) {
        Rng rng = master.fork();
        site.structure = structure;
        // 1 + uniform(cycles) spans [1, cycles]; the top draw would
        // inject during the exit cycle itself, after the last point
        // at which the flip could do anything.  Clamp into the live
        // range without changing the draw count, so every other
        // sample's stream is untouched.
        site.cycle = std::min<uint64_t>(
            1 + rng.uniform(golden_.cycles),
            golden_.cycles > 1 ? golden_.cycles - 1 : 1);
        site.bit = rng.uniform(bits);
    }
    return sites;
}

namespace
{

/** Per-sample journal payload of one microarchitectural injection. */
struct UarchSample
{
    Outcome out = Outcome::Masked;
    Visibility vis;
};

Json
sampleToJson(const UarchSample &s)
{
    Json j = Json::object();
    j.set("o", static_cast<int>(s.out));
    j.set("v", s.vis.visible);
    if (s.vis.visible) {
        j.set("f", static_cast<int>(s.vis.fpm));
        j.set("c", s.vis.cycle);
    }
    return j;
}

UarchSample
sampleFromJson(const Json &j)
{
    UarchSample s;
    s.out = static_cast<Outcome>(j.at("o").asInt());
    s.vis.visible = j.at("v").asBool();
    if (s.vis.visible) {
        s.vis.fpm = static_cast<Fpm>(j.at("f").asInt());
        s.vis.cycle = static_cast<uint64_t>(j.at("c").asInt());
    }
    return s;
}

} // namespace

UarchCampaignResult
UarchCampaign::run(Structure structure, size_t n, uint64_t seed,
                   const exec::ExecConfig &ec)
{
    std::vector<FaultSite> sites = sampleSites(structure, n, seed);
    ensureTrace();

    exec::ExecConfig cfg = ec;
    if (policy_.enabled && trace_.recorded() && !cfg.scheduleKey) {
        // Dispatch in injection-cycle order so consecutive samples on
        // a worker restore the same checkpoint (results still fold in
        // index order — see ExecConfig::scheduleKey).
        cfg.scheduleKey = [&sites](size_t i) { return sites[i].cycle; };
    }

    auto samples = exec::runSamples<UarchSample>(
        n, cfg,
        [this] { return std::make_unique<CycleSim>(core_); },
        [this, &sites](CycleSim &worker, size_t i) {
            UarchSample s;
            s.out = runOneOn(worker, sites[i], s.vis);
            return s;
        },
        sampleToJson, sampleFromJson);

    // VSTACK_VERIFY_CHECKPOINT audit: re-run a deterministic subset
    // cold (from boot, no early termination) and require byte-identical
    // sample records.  Serial, in the calling process, after the
    // campaign — the accelerated results it checks are already final.
    if (policy_.enabled && trace_.recorded() &&
        policy_.verifyPercent > 0.0 && !exec::shutdownRequested()) {
        std::unique_ptr<CycleSim> cold;
        for (size_t i = 0; i < n; ++i) {
            if (!samples[i] ||
                !exec::verifyReplaySelected(i, policy_.verifyPercent))
                continue;
            if (!cold)
                cold = std::make_unique<CycleSim>(core_);
            UarchSample ref;
            ref.out = runOneColdOn(*cold, sites[i], ref.vis);
            const std::string want = sampleToJson(ref).dump();
            const std::string got = sampleToJson(*samples[i]).dump();
            if (got != want) {
                throw CheckpointDivergence(strprintf(
                    "verify-checkpoint: sample %zu (%s, cycle %llu, "
                    "bit %llu) diverged from its cold re-run (cold %s, "
                    "accelerated %s); the checkpoint path is unsound",
                    i, structureName(structure),
                    static_cast<unsigned long long>(sites[i].cycle),
                    static_cast<unsigned long long>(sites[i].bit),
                    want.c_str(), got.c_str()));
            }
        }
    }

    // Fold in index order: aggregation is deterministic by
    // construction, independent of completion order.
    UarchCampaignResult res;
    for (const auto &s : samples) {
        if (!s) {
            ++res.outcomes.injectorErrors;
            continue;
        }
        res.outcomes.add(s->out);
        if (s->vis.visible)
            res.fpms.add(s->vis.fpm);
        else
            ++res.hwMasked;
    }
    res.samples = n - res.outcomes.injectorErrors;
    return res;
}

} // namespace vstack
