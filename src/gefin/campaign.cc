#include "campaign.h"

#include <algorithm>
#include <memory>

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

UarchCampaign::UarchCampaign(const CoreConfig &core, Program image)
    : core_(core), image(std::move(image)), sim(core)
{
    sim.load(this->image);
    UarchRunResult r = sim.run(exec::goldenRunBudget(watchdog));
    if (r.stop != StopReason::Exited) {
        throw GoldenRunError(
            strprintf("golden cycle-level run failed on %s: %s",
                      core.name.c_str(), r.excMsg.c_str()));
    }
    golden_.cycles = r.cycles;
    golden_.insts = r.insts;
    golden_.kernelInsts = r.kernelInsts;
    golden_.kernelCycles = r.kernelCycles;
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
}

void
UarchCampaign::ensureTrace()
{
    // Double-checked under the lock: concurrent structure drivers of a
    // suite share one campaign, and the recording pass mutates the
    // campaign's own simulator.
    std::lock_guard<std::mutex> lock(traceMu);
    if (!policy_.enabled || trace_.recorded())
        return;
    sim.load(image);
    // The recording budget must cover the known golden length even if
    // the per-injection watchdog was tightened after construction.
    UarchRunResult r = sim.runRecording(
        std::max(exec::goldenRunBudget(watchdog), golden_.cycles + 1),
        trace_, policy_.digestInterval(golden_.cycles),
        std::max(1u, policy_.digestsPerCheckpoint));
    // The recording pass must retrace the construction-time golden run
    // exactly — anything else means the simulator is nondeterministic
    // and no checkpoint can be trusted.
    if (r.stop != StopReason::Exited || r.cycles != golden_.cycles ||
        r.output.dma != golden_.dma ||
        r.output.exitCode != golden_.exitCode) {
        throw GoldenRunError(strprintf(
            "golden recording pass diverged from the golden run on %s",
            core_.name.c_str()));
    }
}

Outcome
UarchCampaign::classify(const UarchRunResult &r) const
{
    return classifyDeviceRun(r.stop, r.output, golden_.dma,
                             golden_.exitCode);
}

Outcome
UarchCampaign::runOne(const FaultSite &site, Visibility &vis)
{
    ensureTrace();
    return runOneOn(sim, site, vis);
}

Outcome
UarchCampaign::runOneOn(CycleSim &worker, const FaultSite &site,
                        Visibility &vis) const
{
    if (!policy_.enabled || !trace_.recorded())
        return runOneColdOn(worker, site, vis);

    worker.restore(trace_.nearestBelow(site.cycle).state);
    worker.scheduleInjection(site);
    UarchRunResult r = worker.runWithTrace(
        watchdog.limitFor(golden_.cycles), trace_, policy_.earlyStop);
    vis = r.visibility;
    return classify(r);
}

Outcome
UarchCampaign::runOneColdOn(CycleSim &worker, const FaultSite &site,
                            Visibility &vis) const
{
    worker.load(image);
    worker.scheduleInjection(site);
    UarchRunResult r = worker.run(watchdog.limitFor(golden_.cycles));
    vis = r.visibility;
    return classify(r);
}

Outcome
UarchCampaign::runFaultOn(CycleSim &worker,
                          const fault::UarchFault &fault,
                          Visibility &vis) const
{
    if (!policy_.enabled || !trace_.recorded())
        return runFaultColdOn(worker, fault, vis);

    // Sites are ascending by cycle, so restoring below the first is
    // an exact prefix for every site; the run loop applies each site
    // as its cycle arrives, and early termination stays sound because
    // it requires the pending-injection list to be empty.
    worker.restore(trace_.nearestBelow(fault.sites.front().cycle).state);
    for (const FaultSite &site : fault.sites)
        worker.scheduleInjection(site);
    UarchRunResult r = worker.runWithTrace(
        watchdog.limitFor(golden_.cycles), trace_, policy_.earlyStop);
    vis = r.visibility;
    return classify(r);
}

Outcome
UarchCampaign::runFaultColdOn(CycleSim &worker,
                              const fault::UarchFault &fault,
                              Visibility &vis) const
{
    worker.load(image);
    for (const FaultSite &site : fault.sites)
        worker.scheduleInjection(site);
    UarchRunResult r = worker.run(watchdog.limitFor(golden_.cycles));
    vis = r.visibility;
    return classify(r);
}

std::vector<fault::UarchFault>
UarchCampaign::sampleFaults(const fault::FaultModel *model,
                            Structure structure, size_t n,
                            uint64_t seed) const
{
    fault::UarchSpace space;
    space.structure = structure;
    space.cycles = golden_.cycles;
    space.bits = sim.structureBits(structure);
    for (size_t i = 0; i < 5; ++i)
        space.allBits[i] = sim.structureBits(allStructures[i]);

    // The master stream keeps the legacy per-structure seeding; each
    // sample is the i-th fork, a pure function of (seed, i), so the
    // list — and hence the campaign — is identical at every thread
    // count for every model.
    Rng master(seed ^ (static_cast<uint64_t>(structure) << 56));
    return (model ? model : fault::singleBitModel().get())
        ->sampleUarch(master, space, n);
}

std::vector<FaultSite>
UarchCampaign::sampleSites(Structure structure, size_t n,
                           uint64_t seed) const
{
    // The single-bit model reproduces the historical draw sequence;
    // flatten its one-site faults back into the legacy site list.
    std::vector<fault::UarchFault> faults =
        sampleFaults(nullptr, structure, n, seed);
    std::vector<FaultSite> sites;
    sites.reserve(faults.size());
    for (const fault::UarchFault &f : faults)
        sites.push_back(f.sites.front());
    return sites;
}

namespace
{

/** Per-sample journal payload of one microarchitectural injection. */
struct UarchSample
{
    Outcome out = Outcome::Masked;
    Visibility vis;
};

Json
sampleToJson(const UarchSample &s)
{
    Json j = Json::object();
    j.set("o", static_cast<int>(s.out));
    j.set("v", s.vis.visible);
    if (s.vis.visible) {
        j.set("f", static_cast<int>(s.vis.fpm));
        j.set("c", s.vis.cycle);
    }
    return j;
}

UarchSample
sampleFromJson(const Json &j)
{
    UarchSample s;
    s.out = static_cast<Outcome>(j.at("o").asInt());
    s.vis.visible = j.at("v").asBool();
    if (s.vis.visible) {
        s.vis.fpm = static_cast<Fpm>(j.at("f").asInt());
        s.vis.cycle = static_cast<uint64_t>(j.at("c").asInt());
    }
    return s;
}

/** A worker's private cycle-level simulator. */
struct UarchCtx final : exec::LayerDriver::Ctx
{
    explicit UarchCtx(const CoreConfig &core) : sim(core) {}
    CycleSim sim;
};

} // namespace

UarchDriver::UarchDriver(UarchCampaign &campaign, Structure structure,
                         size_t n, uint64_t seed,
                         std::shared_ptr<const fault::FaultModel> model)
    : campaign(campaign), structure(structure), n(n), seed(seed),
      model(std::move(model))
{
}

void
UarchDriver::prepare()
{
    // Trace first: ensureTrace() serializes concurrent drivers sharing
    // this campaign, so by the time sampleFaults() touches the shared
    // simulator the recording pass is over.
    campaign.ensureTrace();
    if (faults.empty())
        faults = campaign.sampleFaults(model.get(), structure, n, seed);
}

std::unique_ptr<exec::LayerDriver::Ctx>
UarchDriver::makeCtx() const
{
    return std::make_unique<UarchCtx>(campaign.core());
}

Json
UarchDriver::runSample(Ctx &ctx, size_t i) const
{
    UarchSample s;
    s.out = campaign.runFaultOn(static_cast<UarchCtx &>(ctx).sim,
                                faults[i], s.vis);
    return sampleToJson(s);
}

Json
UarchDriver::runSampleCold(Ctx &ctx, size_t i) const
{
    UarchSample s;
    s.out = campaign.runFaultColdOn(static_cast<UarchCtx &>(ctx).sim,
                                    faults[i], s.vis);
    return sampleToJson(s);
}

bool
UarchDriver::scheduled() const
{
    return campaign.checkpointPolicy().enabled &&
           campaign.trace().recorded();
}

uint64_t
UarchDriver::scheduleKey(size_t i) const
{
    return faults[i].sites.front().cycle;
}

double
UarchDriver::verifyPercent() const
{
    return scheduled() ? campaign.checkpointPolicy().verifyPercent : 0.0;
}

std::string
UarchDriver::describeSample(size_t i) const
{
    const FaultSite &first = faults[i].sites.front();
    std::string desc = strprintf(
        "sample %zu (%s, cycle %llu, bit %llu", i,
        structureName(structure),
        static_cast<unsigned long long>(first.cycle),
        static_cast<unsigned long long>(first.bit));
    if (faults[i].sites.size() > 1)
        desc += strprintf(", %zu sites", faults[i].sites.size());
    return desc + ")";
}

UarchCampaignResult
foldUarchSamples(const std::vector<std::optional<Json>> &samples)
{
    // Fold in index order: aggregation is deterministic by
    // construction, independent of completion order.
    UarchCampaignResult res;
    for (const auto &p : samples) {
        if (!p) {
            ++res.outcomes.injectorErrors;
            continue;
        }
        const UarchSample s = sampleFromJson(*p);
        res.outcomes.add(s.out);
        if (s.vis.visible)
            res.fpms.add(s.vis.fpm);
        else
            ++res.hwMasked;
    }
    res.samples = samples.size() - res.outcomes.injectorErrors;
    return res;
}

UarchCampaignResult
UarchCampaign::run(Structure structure, size_t n, uint64_t seed,
                   const exec::ExecConfig &ec,
                   const fault::FaultModel *model)
{
    // Non-owning alias: the caller's model outlives this synchronous
    // run.
    UarchDriver driver(*this, structure, n, seed,
                       std::shared_ptr<const fault::FaultModel>(
                           std::shared_ptr<const void>(), model));
    return foldUarchSamples(exec::runDriver(driver, ec));
}

} // namespace vstack
