#include "campaign.h"

#include "support/logging.h"
#include "support/rng.h"

namespace vstack
{

UarchCampaign::UarchCampaign(const CoreConfig &core, Program image)
    : core_(core), image(std::move(image)), sim(core)
{
    sim.load(this->image);
    UarchRunResult r = sim.run(400'000'000);
    if (r.stop != StopReason::Exited) {
        fatal("golden cycle-level run failed on %s: %s",
              core.name.c_str(), r.excMsg.c_str());
    }
    golden_.cycles = r.cycles;
    golden_.insts = r.insts;
    golden_.kernelInsts = r.kernelInsts;
    golden_.kernelCycles = r.kernelCycles;
    golden_.dma = r.output.dma;
    golden_.exitCode = r.output.exitCode;
}

Outcome
UarchCampaign::runOne(const FaultSite &site, Visibility &vis)
{
    sim.load(image);
    sim.scheduleInjection(site);
    UarchRunResult r = sim.run(golden_.cycles * 4 + 50'000);
    vis = r.visibility;

    switch (r.stop) {
      case StopReason::DetectHit:
        return Outcome::Detected;
      case StopReason::Exception:
      case StopReason::Watchdog:
      case StopReason::Running:
        return Outcome::Crash;
      case StopReason::Exited:
        break;
    }
    if (r.output.dma != golden_.dma || r.output.exitCode != golden_.exitCode)
        return Outcome::Sdc;
    return Outcome::Masked;
}

UarchCampaignResult
UarchCampaign::run(Structure structure, size_t n, uint64_t seed,
                   const std::function<void(size_t)> &progress)
{
    const uint64_t bits = sim.structureBits(structure);
    Rng master(seed ^ (static_cast<uint64_t>(structure) << 56));

    UarchCampaignResult res;
    res.samples = n;
    for (size_t i = 0; i < n; ++i) {
        Rng rng = master.fork();
        FaultSite site;
        site.structure = structure;
        site.cycle = 1 + rng.uniform(golden_.cycles);
        site.bit = rng.uniform(bits);

        Visibility vis;
        const Outcome out = runOne(site, vis);
        res.outcomes.add(out);
        if (vis.visible)
            res.fpms.add(vis.fpm);
        else
            ++res.hwMasked;
        if (progress)
            progress(i + 1);
    }
    return res;
}

} // namespace vstack
