/**
 * @file
 * Shared campaign memoisation schema.
 *
 * Result-store keys, the JSON codecs of cached campaign results, and
 * the per-layer execution policy (watchdog slack, checkpoint policy,
 * journal wiring) used by both the per-metric VulnerabilityStack
 * entry points and the suite scheduler (core/suite.h).  Keeping every
 * caller on this one module is what guarantees a suite's store
 * entries are byte-identical to the serial path's: same key bytes,
 * same encoder, same policy.
 */
#ifndef VSTACK_CORE_CAMPAIGN_IO_H
#define VSTACK_CORE_CAMPAIGN_IO_H

#include <string>

#include "exec/executor.h"
#include "gefin/campaign.h"
#include "isa/isa.h"
#include "machine/fpm.h"
#include "machine/outcome.h"
#include "support/env.h"
#include "support/json.h"

namespace vstack
{

/** A workload variant: baseline or FT-hardened. */
struct Variant
{
    std::string workload;
    bool hardened = false;

    std::string tag() const
    {
        return workload + (hardened ? "-ft" : "");
    }
};

namespace campaign_io
{

/** Result-store schema version embedded in every key. */
constexpr const char *SCHEMA = "v1";

/** @name Cached-result JSON codecs @{ */
Json countsToJson(const OutcomeCounts &c);
OutcomeCounts countsFromJson(const Json &j);
Json uarchToJson(const UarchCampaignResult &r);
UarchCampaignResult uarchFromJson(const Json &j);
/** DMA bytes are not cached; only the statistics are consumed. */
Json goldenToJson(const UarchGolden &g);
UarchGolden goldenFromJson(const Json &j);
/** @} */

/**
 * The effective canonical fault-model tag of one campaign: the
 * per-spec override `fm` when non-empty, else the environment's
 * default — normalized to "" for the single-bit default, so default
 * campaigns keep their historical key/journal bytes no matter how the
 * default was spelled.
 */
std::string faultModelTag(const EnvConfig &cfg,
                          const std::string &fm = {});

/** @name Result-store keys (byte-stable; changing one orphans every
 *  cached campaign under the old bytes).  `fm` is a per-campaign
 *  fault-model override ("" = the environment's model); a non-default
 *  model appends "/fm:<tag>", so campaigns differing only in fault
 *  model can never share a store entry.  goldenKey stays model-free:
 *  the golden run is fault-free by definition. @{ */
std::string uarchKey(const EnvConfig &cfg, const std::string &core,
                     const Variant &v, Structure s,
                     const std::string &fm = {});
std::string pvfKey(const EnvConfig &cfg, IsaId isa, const Variant &v,
                   Fpm fpm, const std::string &fm = {});
std::string svfKey(const EnvConfig &cfg, const Variant &v,
                   const std::string &fm = {});
std::string goldenKey(const std::string &core, const Variant &v);
/** @} */

/** Checkpoint-accelerator policy derived from the environment. */
exec::CheckpointPolicy checkpointPolicy(const EnvConfig &cfg);

/** @name Per-layer watchdog budgets (historical slacks) @{ */
exec::WatchdogBudget uarchWatchdog(const EnvConfig &cfg);
exec::WatchdogBudget pvfWatchdog(const EnvConfig &cfg);
exec::WatchdogBudget svfWatchdog(const EnvConfig &cfg);
/** @} */

/**
 * Execution policy for one memoised campaign: worker count from the
 * environment, plus a resume journal under the result-store directory
 * keyed like the cache entry.  The journal is removed by the caller
 * once the final result lands in the store.
 */
exec::ExecConfig execPolicy(const EnvConfig &cfg, exec::Journal &journal,
                            const std::string &key, size_t n,
                            const std::string &fm = {});

} // namespace campaign_io

} // namespace vstack

#endif // VSTACK_CORE_CAMPAIGN_IO_H
