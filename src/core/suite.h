/**
 * @file
 * Suite-level campaign scheduler: many campaigns, one worker pool.
 *
 * A CampaignPlan names a set of memoised campaigns (layer, core/ISA,
 * structure/FPM, workload variant); runSuite() executes every pending
 * one over a single persistent pool of `jobs` workers instead of
 * parallelising each campaign in turn.  Workers treat golden-run and
 * trace acquisition as ordinary pool tasks and steal per-sample work
 * across campaign boundaries, so the serial phases of one campaign
 * (its golden run, its recording pass, its final fold) overlap with
 * the sample backlog of the others — the pool never drains just
 * because one campaign is between phases.
 *
 * Determinism is inherited, not re-proven: every campaign's fault
 * list and per-sample RNG streams are pure functions of (seed, sample
 * index), samples are folded in index order, and the store keys,
 * codecs, and journal formats come from core/campaign_io.h — the same
 * modules the serial entry points use.  A suite therefore produces
 * byte-identical ResultStore entries to running the same campaigns
 * serially, at any --jobs count, under --isolate, and across a kill +
 * --resume (each campaign keeps its own CRC-framed journal, with
 * per-record campaign-key tags so concurrent journals cannot
 * cross-contaminate).
 *
 * Failure containment matches the serial path: a SimError quarantines
 * its one sample (injectorErrors); a GoldenRunError is contained to
 * the plan entries naming the affected campaign (complete = false,
 * CampaignOutcome::error set) so unrelated campaigns in the same
 * submission still complete; a ReplayDivergence / CheckpointDivergence
 * aborts the whole suite loudly, reported for the earliest affected
 * plan entry.
 *
 * A suite can also be drained cooperatively through
 * SuiteOptions::cancel (client cancel, per-request deadline, service
 * watchdog): workers stop claiming work at the same safe points as a
 * signal drain, journals stay valid for resume, and the report comes
 * back with interrupted = true and the unfinished entries marked
 * complete = false.
 */
#ifndef VSTACK_CORE_SUITE_H
#define VSTACK_CORE_SUITE_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/vstack.h"
#include "exec/cancel.h"

namespace vstack
{

namespace exec
{
class LayerDriver;
}

/** Injection layer of one suite campaign. */
enum class CampaignLayer : uint8_t { Uarch, Pvf, Svf };

const char *campaignLayerName(CampaignLayer layer);

/**
 * One memoised campaign a suite should produce.  Sample counts and
 * the seed are deliberately NOT per-spec: they resolve from the
 * stack's EnvConfig exactly like the serial entry points, so a
 * suite's store keys match a serial run's byte for byte.
 */
struct CampaignSpec
{
    CampaignLayer layer = CampaignLayer::Uarch;
    Variant variant;
    std::string core;                    ///< uarch only
    Structure structure = Structure::RF; ///< uarch only
    IsaId isa = IsaId::Av64;             ///< pvf only
    Fpm fpm = Fpm::WD;                   ///< pvf only
    /** Canonical fault-model tag; "" inherits the stack's environment
     *  default.  An explicit "single-bit" is preserved (not collapsed
     *  to "") so a per-entry override beats a non-default environment
     *  model while still resolving to the default key bytes. */
    std::string faultModel;

    /** Human label, e.g. "uarch/ax72/fft/RF" or "pvf/av64/fft/WD". */
    std::string label() const;
};

/** An ordered set of campaigns (duplicates are deduplicated by the
 *  scheduler, not the plan). */
class CampaignPlan
{
  public:
    void add(const CampaignSpec &spec) { specs_.push_back(spec); }
    void addUarch(const std::string &core, const Variant &v, Structure s);
    /** All five structures of one (core, variant), in allStructures
     *  order. */
    void addUarchAll(const std::string &core, const Variant &v);
    void addPvf(IsaId isa, const Variant &v, Fpm fpm);
    void addSvf(const Variant &v);

    const std::vector<CampaignSpec> &specs() const { return specs_; }
    bool empty() const { return specs_.empty(); }
    size_t size() const { return specs_.size(); }

    /** Stamp a fault-model tag onto specs [from, size) — the manifest
     *  expander fans one entry out into several specs and then applies
     *  the entry's model to exactly that slice. */
    void applyFaultModel(size_t from, const std::string &fm);

  private:
    std::vector<CampaignSpec> specs_;
};

/** Live progress of a running suite (counters are cumulative). */
struct SuiteProgress
{
    size_t campaignsDone = 0;
    size_t campaignsTotal = 0;
    /** Samples finished across all pending campaigns, journal replays
     *  included; cache-hit campaigns contribute nothing. */
    size_t samplesDone = 0;
    size_t samplesTotal = 0;
    /** Live simulation throughput (replays and cache hits excluded). */
    double samplesPerSec = 0.0;
    uint64_t storageFaults = 0;
    uint64_t goldenEvictions = 0;
};

struct SuiteOptions
{
    /** Run the plan through the serial per-campaign entry points in
     *  plan order (the reference implementation the scheduler must
     *  reproduce byte for byte). */
    bool serial = false;
    /** Called under the scheduler lock after every sample/campaign
     *  completion — keep it cheap; never reentered concurrently. */
    std::function<void(const SuiteProgress &)> progress;
    /** Optional cooperative cancel token (deadline, client cancel,
     *  service watchdog).  A fired token drains the suite like a
     *  shutdown signal: journals intact, partial campaigns never
     *  cached, report.interrupted = true.  Must outlive runSuite(). */
    const exec::CancelToken *cancel = nullptr;
};

/** Final result of one plan entry. */
struct CampaignOutcome
{
    CampaignSpec spec;
    bool cacheHit = false; ///< served from the result store
    /** False when the suite was interrupted before this campaign
     *  finished, or when the campaign itself failed (error below). */
    bool complete = false;
    /** Non-empty when this campaign failed in a contained way (its
     *  golden run threw GoldenRunError); the other plan entries still
     *  ran.  Nothing was cached for a failed campaign. */
    std::string error;
    UarchCampaignResult uarch; ///< layer == Uarch
    OutcomeCounts counts;      ///< layer == Pvf / Svf
};

struct SuiteReport
{
    /** Plan order, one entry per spec (duplicates share results). */
    std::vector<CampaignOutcome> outcomes;
    size_t cacheHits = 0;
    /** Entries whose campaign failed in a contained way (error set). */
    size_t failures = 0;
    bool interrupted = false;
    /** Snapshot of the stack's cumulative storage-fault counter. */
    uint64_t storageFaults = 0;
    uint64_t goldenEvictions = 0;
};

/**
 * The result-store key a spec resolves to under `cfg` — the identity
 * the scheduler dedups by and the service layer uses to detect plans
 * overlapping an in-flight submission.
 */
std::string campaignKey(const EnvConfig &cfg, const CampaignSpec &spec);

/** The sample count a spec resolves to under `cfg` (the layer's -n
 *  knob), shared by the scheduler, the fleet, and the serial paths. */
size_t campaignSamples(const EnvConfig &cfg, const CampaignSpec &spec);

/** Fold a campaign's final per-sample payloads into its store entry —
 *  the same codecs the serial entry points write, byte for byte. */
Json foldCampaignSamples(const CampaignSpec &spec,
                         const std::vector<std::optional<Json>> &samples);

/** Decode a store entry back into the outcome's layer field. */
void decodeCampaignOutcome(CampaignOutcome &o, const Json &result);

/** @name CampaignSpec wire codec (fleet supervisor <-> worker) @{ */
Json specToJson(const CampaignSpec &spec);
/** False + err on malformed objects or unknown layer / structure /
 *  isa / fpm names — never exits (worker processes must survive a
 *  corrupt lease frame gracefully). */
bool specFromJson(const Json &j, CampaignSpec &spec, std::string &err);
/** @} */

/**
 * One spec's campaign objects + layer driver, bundled so the driver's
 * referents (the campaign that owns the golden run / trace) live
 * exactly as long as the driver itself.  The driver is returned
 * *unprepared*: call exec::prepareDriver before running samples.
 */
struct CampaignExec
{
    CampaignExec();
    CampaignExec(CampaignExec &&) noexcept;
    CampaignExec &operator=(CampaignExec &&) noexcept;
    ~CampaignExec();

    std::shared_ptr<UarchCampaign> uarchCampaign;
    std::unique_ptr<PvfCampaign> pvfCampaign;
    std::unique_ptr<SvfCampaign> svfCampaign;
    /** The spec's resolved fault model (null = single-bit); the driver
     *  holds a copy of this shared_ptr, so destruction order in
     *  reset() is not load-bearing. */
    std::shared_ptr<const fault::FaultModel> model;
    std::unique_ptr<exec::LayerDriver> driver;

    void reset();
};

/** Build the campaign + driver bundle for one spec (not yet
 *  prepared); `n` is the sample count (campaignSamples). */
CampaignExec makeCampaignExec(VulnerabilityStack &stack,
                              const CampaignSpec &spec, size_t n);

/**
 * Build a CampaignPlan from a suite-manifest JSON object
 * ({"campaigns": [...]}; see `vstack suite` for the schema, including
 * the "*" axis wildcards).  Returns false with a one-line message in
 * `err` on a malformed manifest or an unknown workload / core /
 * structure / isa / fpm name — never exits, so long-lived services
 * can reject bad submissions gracefully.
 */
bool planFromManifest(const Json &manifest, bool hardenAll,
                      CampaignPlan &plan, std::string &err);

/**
 * Execute every campaign of `plan`, memoising through the stack's
 * ResultStore (already-cached campaigns are short-circuited without
 * consuming pool time).  Worker count, isolation, resume, and
 * verification knobs come from the stack's EnvConfig, exactly like
 * the serial entry points.
 *
 * @throws ReplayDivergence / CheckpointDivergence / SimError exactly
 *         as the serial path would, for the earliest affected plan
 *         entry — except GoldenRunError, which is contained to the
 *         affected plan entries (complete = false, error set).  If a
 *         shutdown is requested (or opts.cancel fires) mid-suite the
 *         pool drains gracefully, journals are kept for --resume, and
 *         the report comes back with interrupted = true.
 */
SuiteReport runSuite(VulnerabilityStack &stack, const CampaignPlan &plan,
                     const SuiteOptions &opts = {});

} // namespace vstack

#endif // VSTACK_CORE_SUITE_H
