/**
 * @file
 * On-disk campaign result cache with end-to-end integrity checking.
 *
 * Injection campaigns are expensive (hundreds of full-system
 * simulations per data point) and shared between figures, so results
 * are memoised as JSON keyed by every parameter that affects them.
 * Benches hit the cache after the first run; deleting the directory
 * forces recomputation.
 *
 * A silently corrupted cache entry skews AVF/SVF deltas exactly like
 * the SDCs the campaigns measure, so entries are stored in a
 * version-stamped, CRC-32C-checksummed envelope:
 *
 *   {"fmt": 2, "crc": "<crc32c of data's compact dump>", "data": {...}}
 *
 * Reads verify the checksum; a damaged entry (unparseable, bad
 * envelope, checksum mismatch) is quarantined by renaming it to
 * `<entry>.json.corrupt`, counted in storageFaults(), and reported as
 * a miss — the campaign recomputes instead of trusting rotten data.
 * Entries from the pre-envelope cache format (bare JSON, schema "v1")
 * are still accepted so existing result directories keep working;
 * they are re-stamped the next time they are written.
 *
 * Writes are atomic and durable: unique temp file + fsync + rename +
 * parent-directory fsync, so a reader never observes a partial entry
 * and a crash immediately after put() cannot lose the rename itself.
 * The write path carries chaos failpoints (`store.write.enospc`,
 * `store.rename.enospc`, `store.rename.kill` — support/failpoint.h)
 * used by tests/test_chaos.cc to prove those guarantees.
 */
#ifndef VSTACK_CORE_RESULTSTORE_H
#define VSTACK_CORE_RESULTSTORE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "support/json.h"

namespace vstack
{

class ResultStore
{
  public:
    /** @param dir cache directory; empty string disables caching. */
    explicit ResultStore(std::string dir);

    bool enabled() const { return !dir.empty(); }

    /** Fetch a cached value; nullopt on miss or quarantined damage. */
    std::optional<Json> get(const std::string &key) const;

    /** Store a value atomically and durably (no-op when disabled). */
    void put(const std::string &key, const Json &value) const;

    /** Filesystem path backing a key (for diagnostics). */
    std::string pathFor(const std::string &key) const;

    /** Corrupt entries quarantined to `.corrupt` sidecars so far
     *  (the `storageFaults` field of campaign reports). */
    uint64_t storageFaults() const
    {
        return faults.load(std::memory_order_relaxed);
    }

  private:
    std::optional<Json> quarantine(const std::string &key,
                                   const char *why) const;

    std::string dir;
    mutable std::atomic<uint64_t> faults{0};
};

} // namespace vstack

#endif // VSTACK_CORE_RESULTSTORE_H
