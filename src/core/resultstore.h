/**
 * @file
 * On-disk campaign result cache.
 *
 * Injection campaigns are expensive (hundreds of full-system
 * simulations per data point) and shared between figures, so results
 * are memoised as JSON keyed by every parameter that affects them.
 * Benches hit the cache after the first run; deleting the directory
 * forces recomputation.
 */
#ifndef VSTACK_CORE_RESULTSTORE_H
#define VSTACK_CORE_RESULTSTORE_H

#include <optional>
#include <string>

#include "support/json.h"

namespace vstack
{

class ResultStore
{
  public:
    /** @param dir cache directory; empty string disables caching. */
    explicit ResultStore(std::string dir);

    bool enabled() const { return !dir.empty(); }

    /** Fetch a cached value; nullopt on miss/parse failure. */
    std::optional<Json> get(const std::string &key) const;

    /** Store a value (no-op when disabled). */
    void put(const std::string &key, const Json &value) const;

    /** Filesystem path backing a key (for diagnostics). */
    std::string pathFor(const std::string &key) const;

  private:
    std::string dir;
};

} // namespace vstack

#endif // VSTACK_CORE_RESULTSTORE_H
