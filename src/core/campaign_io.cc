#include "campaign_io.h"

#include "support/fastpath.h"
#include "support/logging.h"

namespace vstack::campaign_io
{

Json
countsToJson(const OutcomeCounts &c)
{
    Json j = Json::object();
    j.set("masked", c.masked);
    j.set("sdc", c.sdc);
    j.set("crash", c.crash);
    j.set("detected", c.detected);
    if (c.injectorErrors)
        j.set("injectorErrors", c.injectorErrors);
    return j;
}

OutcomeCounts
countsFromJson(const Json &j)
{
    OutcomeCounts c;
    c.masked = static_cast<uint64_t>(j.at("masked").asInt());
    c.sdc = static_cast<uint64_t>(j.at("sdc").asInt());
    c.crash = static_cast<uint64_t>(j.at("crash").asInt());
    c.detected = static_cast<uint64_t>(j.at("detected").asInt());
    if (j.has("injectorErrors"))
        c.injectorErrors =
            static_cast<uint64_t>(j.at("injectorErrors").asInt());
    return c;
}

Json
uarchToJson(const UarchCampaignResult &r)
{
    Json j = Json::object();
    j.set("outcomes", countsToJson(r.outcomes));
    Json f = Json::object();
    f.set("wd", r.fpms.wd);
    f.set("wi", r.fpms.wi);
    f.set("woi", r.fpms.woi);
    f.set("esc", r.fpms.esc);
    j.set("fpms", f);
    j.set("hwMasked", r.hwMasked);
    j.set("samples", r.samples);
    return j;
}

UarchCampaignResult
uarchFromJson(const Json &j)
{
    UarchCampaignResult r;
    r.outcomes = countsFromJson(j.at("outcomes"));
    const Json &f = j.at("fpms");
    r.fpms.wd = static_cast<uint64_t>(f.at("wd").asInt());
    r.fpms.wi = static_cast<uint64_t>(f.at("wi").asInt());
    r.fpms.woi = static_cast<uint64_t>(f.at("woi").asInt());
    r.fpms.esc = static_cast<uint64_t>(f.at("esc").asInt());
    r.hwMasked = static_cast<uint64_t>(j.at("hwMasked").asInt());
    r.samples = static_cast<uint64_t>(j.at("samples").asInt());
    return r;
}

Json
goldenToJson(const UarchGolden &g)
{
    Json j = Json::object();
    j.set("cycles", g.cycles);
    j.set("insts", g.insts);
    j.set("kernelInsts", g.kernelInsts);
    j.set("kernelCycles", g.kernelCycles);
    j.set("exitCode", g.exitCode);
    return j; // DMA bytes not cached; only stats are consumed
}

UarchGolden
goldenFromJson(const Json &j)
{
    UarchGolden g;
    g.cycles = static_cast<uint64_t>(j.at("cycles").asInt());
    g.insts = static_cast<uint64_t>(j.at("insts").asInt());
    g.kernelInsts = static_cast<uint64_t>(j.at("kernelInsts").asInt());
    g.kernelCycles = static_cast<uint64_t>(j.at("kernelCycles").asInt());
    g.exitCode = static_cast<uint32_t>(j.at("exitCode").asInt());
    return g;
}

std::string
faultModelTag(const EnvConfig &cfg, const std::string &fm)
{
    const std::string &tag = fm.empty() ? cfg.faultModel : fm;
    return tag == "single-bit" ? std::string() : tag;
}

namespace
{

/** Key suffix of a campaign's fault model; empty for the single-bit
 *  default so historical key bytes are untouched. */
std::string
fmSuffix(const EnvConfig &cfg, const std::string &fm)
{
    const std::string tag = faultModelTag(cfg, fm);
    return tag.empty() ? tag : "/fm:" + tag;
}

} // namespace

std::string
uarchKey(const EnvConfig &cfg, const std::string &core, const Variant &v,
         Structure s, const std::string &fm)
{
    return strprintf("uarch/%s/%s/%s/%s/n%zu/seed%llu%s", SCHEMA,
                     core.c_str(), v.tag().c_str(), structureName(s),
                     cfg.uarchFaults,
                     static_cast<unsigned long long>(cfg.seed),
                     fmSuffix(cfg, fm).c_str());
}

std::string
pvfKey(const EnvConfig &cfg, IsaId isa, const Variant &v, Fpm fpm,
       const std::string &fm)
{
    return strprintf("pvf/%s/%s/%s/%s/n%zu/seed%llu%s", SCHEMA,
                     isaName(isa), v.tag().c_str(), fpmName(fpm),
                     cfg.archFaults,
                     static_cast<unsigned long long>(cfg.seed),
                     fmSuffix(cfg, fm).c_str());
}

std::string
svfKey(const EnvConfig &cfg, const Variant &v, const std::string &fm)
{
    return strprintf("svf/%s/%s/n%zu/seed%llu%s", SCHEMA, v.tag().c_str(),
                     cfg.swFaults,
                     static_cast<unsigned long long>(cfg.seed),
                     fmSuffix(cfg, fm).c_str());
}

std::string
goldenKey(const std::string &core, const Variant &v)
{
    return strprintf("golden/%s/%s/%s", SCHEMA, core.c_str(),
                     v.tag().c_str());
}

exec::CheckpointPolicy
checkpointPolicy(const EnvConfig &cfg)
{
    exec::CheckpointPolicy policy;
    policy.enabled = cfg.checkpoint;
    policy.checkpoints = cfg.checkpoints;
    policy.earlyStop = cfg.checkpoint;
    policy.verifyPercent = cfg.verifyCheckpoint;
    policy.densify(fastPathEnabled());
    return policy;
}

exec::WatchdogBudget
uarchWatchdog(const EnvConfig &cfg)
{
    return {cfg.watchdogFactor, 50'000};
}

exec::WatchdogBudget
pvfWatchdog(const EnvConfig &cfg)
{
    return {cfg.watchdogFactor, 10'000};
}

exec::WatchdogBudget
svfWatchdog(const EnvConfig &cfg)
{
    return {cfg.watchdogFactor, 100'000};
}

exec::ExecConfig
execPolicy(const EnvConfig &cfg, exec::Journal &journal,
           const std::string &key, size_t n, const std::string &fm)
{
    exec::ExecConfig ec;
    ec.jobs = cfg.jobs;
    ec.isolate = cfg.isolate;
    ec.verifyReplay = cfg.verifyReplay;
    journal.setFsync(cfg.journalFsync);
    if (!cfg.resultsDir.empty() &&
        journal.open(exec::Journal::pathFor(cfg.resultsDir, key), key, n,
                     cfg.seed, cfg.resume, faultModelTag(cfg, fm)))
        ec.journal = &journal;
    return ec;
}

} // namespace vstack::campaign_io
