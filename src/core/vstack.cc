#include "vstack.h"

#include "arch/pvf.h"
#include "compiler/compile.h"
#include "ft/harden.h"
#include "kernel/kernel.h"
#include "support/logging.h"
#include "support/stats.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{

namespace
{

constexpr const char *SCHEMA = "v1";

Json
countsToJson(const OutcomeCounts &c)
{
    Json j = Json::object();
    j.set("masked", c.masked);
    j.set("sdc", c.sdc);
    j.set("crash", c.crash);
    j.set("detected", c.detected);
    if (c.injectorErrors)
        j.set("injectorErrors", c.injectorErrors);
    return j;
}

OutcomeCounts
countsFromJson(const Json &j)
{
    OutcomeCounts c;
    c.masked = static_cast<uint64_t>(j.at("masked").asInt());
    c.sdc = static_cast<uint64_t>(j.at("sdc").asInt());
    c.crash = static_cast<uint64_t>(j.at("crash").asInt());
    c.detected = static_cast<uint64_t>(j.at("detected").asInt());
    if (j.has("injectorErrors"))
        c.injectorErrors =
            static_cast<uint64_t>(j.at("injectorErrors").asInt());
    return c;
}

Json
uarchToJson(const UarchCampaignResult &r)
{
    Json j = Json::object();
    j.set("outcomes", countsToJson(r.outcomes));
    Json f = Json::object();
    f.set("wd", r.fpms.wd);
    f.set("wi", r.fpms.wi);
    f.set("woi", r.fpms.woi);
    f.set("esc", r.fpms.esc);
    j.set("fpms", f);
    j.set("hwMasked", r.hwMasked);
    j.set("samples", r.samples);
    return j;
}

UarchCampaignResult
uarchFromJson(const Json &j)
{
    UarchCampaignResult r;
    r.outcomes = countsFromJson(j.at("outcomes"));
    const Json &f = j.at("fpms");
    r.fpms.wd = static_cast<uint64_t>(f.at("wd").asInt());
    r.fpms.wi = static_cast<uint64_t>(f.at("wi").asInt());
    r.fpms.woi = static_cast<uint64_t>(f.at("woi").asInt());
    r.fpms.esc = static_cast<uint64_t>(f.at("esc").asInt());
    r.hwMasked = static_cast<uint64_t>(j.at("hwMasked").asInt());
    r.samples = static_cast<uint64_t>(j.at("samples").asInt());
    return r;
}

Json
goldenToJson(const UarchGolden &g)
{
    Json j = Json::object();
    j.set("cycles", g.cycles);
    j.set("insts", g.insts);
    j.set("kernelInsts", g.kernelInsts);
    j.set("kernelCycles", g.kernelCycles);
    j.set("exitCode", g.exitCode);
    return j; // DMA bytes not cached; only stats are consumed
}

/**
 * Execution policy for one memoised campaign: worker count from the
 * environment, plus a resume journal under the result-store directory
 * keyed like the cache entry.  The journal is removed once the final
 * result lands in the store.
 */
exec::ExecConfig
execPolicy(const EnvConfig &cfg, exec::Journal &journal,
           const std::string &key, size_t n)
{
    exec::ExecConfig ec;
    ec.jobs = cfg.jobs;
    ec.isolate = cfg.isolate;
    ec.verifyReplay = cfg.verifyReplay;
    journal.setFsync(cfg.journalFsync);
    if (!cfg.resultsDir.empty() &&
        journal.open(exec::Journal::pathFor(cfg.resultsDir, key), key, n,
                     cfg.seed, cfg.resume))
        ec.journal = &journal;
    return ec;
}

} // namespace

VulnSplit
toSplit(const OutcomeCounts &c)
{
    VulnSplit s;
    s.sdc = c.sdcRate();
    s.crash = c.crashRate();
    s.detected = c.detectedRate();
    return s;
}

struct VulnerabilityStack::Cache
{
    std::map<std::string, ir::Module> irs;
    std::map<std::string, Program> images;
    std::map<IsaId, Program> kernels;
    // Size-1 LRU of the cycle-level campaign: the five structure
    // campaigns against one (core, workload) reuse a single golden
    // run and checkpoint trace.  Deliberately not an unbounded map —
    // a recorded trace holds the checkpoints' COW pages, and keeping
    // one per (core, workload) pair alive across a 16-cell report
    // sweep would pin hundreds of MB.
    std::string campaignKey;
    std::shared_ptr<UarchCampaign> campaign;
};

VulnerabilityStack::VulnerabilityStack(const EnvConfig &cfg)
    : cfg(cfg), store(cfg.resultsDir), cache(std::make_unique<Cache>())
{
}

VulnerabilityStack::~VulnerabilityStack() = default;

const ir::Module &
VulnerabilityStack::irFor(const Variant &v, int xlen)
{
    const std::string key = v.tag() + "/" + std::to_string(xlen);
    auto it = cache->irs.find(key);
    if (it != cache->irs.end())
        return it->second;

    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload(v.workload).source, xlen);
    if (!fr.ok)
        fatal("compile %s: %s", v.workload.c_str(), fr.error.c_str());
    ir::Module m = std::move(fr.module);
    if (v.hardened)
        m = hardenModule(m, defaultHardenOptions());
    return cache->irs.emplace(key, std::move(m)).first->second;
}

const Program &
VulnerabilityStack::imageFor(const Variant &v, IsaId isa)
{
    const std::string key =
        v.tag() + "/" + isaName(isa);
    auto it = cache->images.find(key);
    if (it != cache->images.end())
        return it->second;

    if (!cache->kernels.count(isa))
        cache->kernels.emplace(isa, buildKernel(isa));

    const ir::Module &m = irFor(v, IsaSpec::get(isa).xlen);
    mcl::BuildResult build = mcl::buildUserFromIr(m, isa);
    if (!build.ok)
        fatal("codegen %s: %s", v.tag().c_str(), build.error.c_str());
    Program sys = buildSystemImage(cache->kernels.at(isa), build.program);
    return cache->images.emplace(key, std::move(sys)).first->second;
}

UarchCampaign &
VulnerabilityStack::campaignFor(const std::string &core, const Variant &v)
{
    const std::string key = core + "/" + v.tag();
    if (cache->campaignKey == key && cache->campaign)
        return *cache->campaign;

    const CoreConfig &cc = coreByName(core);
    auto campaign =
        std::make_shared<UarchCampaign>(cc, imageFor(v, cc.isa));
    campaign->setWatchdog({cfg.watchdogFactor, 50'000});
    exec::CheckpointPolicy policy;
    policy.enabled = cfg.checkpoint;
    policy.checkpoints = cfg.checkpoints;
    policy.earlyStop = cfg.checkpoint;
    policy.verifyPercent = cfg.verifyCheckpoint;
    campaign->setCheckpointPolicy(policy);
    cache->campaignKey = key;
    cache->campaign = std::move(campaign);
    return *cache->campaign;
}

UarchCampaignResult
VulnerabilityStack::uarch(const std::string &core, const Variant &v,
                          Structure s)
{
    const std::string key = strprintf(
        "uarch/%s/%s/%s/%s/n%zu/seed%llu", SCHEMA, core.c_str(),
        v.tag().c_str(), structureName(s), cfg.uarchFaults,
        static_cast<unsigned long long>(cfg.seed));
    if (auto cached = store.get(key))
        return uarchFromJson(*cached);

    UarchCampaign &campaign = campaignFor(core, v);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.uarchFaults);
    journalFaults += journal.storageFaults();
    UarchCampaignResult r = campaign.run(s, cfg.uarchFaults, cfg.seed, ec);
    if (exec::shutdownRequested())
        return r; // interrupted: keep the journal, never cache a partial
    store.put(key, uarchToJson(r));
    journal.removeFile();
    return r;
}

UarchGolden
VulnerabilityStack::uarchGolden(const std::string &core, const Variant &v)
{
    const std::string key = strprintf("golden/%s/%s/%s", SCHEMA,
                                      core.c_str(), v.tag().c_str());
    if (auto cached = store.get(key)) {
        UarchGolden g;
        g.cycles = static_cast<uint64_t>(cached->at("cycles").asInt());
        g.insts = static_cast<uint64_t>(cached->at("insts").asInt());
        g.kernelInsts =
            static_cast<uint64_t>(cached->at("kernelInsts").asInt());
        g.kernelCycles =
            static_cast<uint64_t>(cached->at("kernelCycles").asInt());
        g.exitCode =
            static_cast<uint32_t>(cached->at("exitCode").asInt());
        return g;
    }
    const UarchGolden &g = campaignFor(core, v).golden();
    store.put(key, goldenToJson(g));
    return g;
}

OutcomeCounts
VulnerabilityStack::pvf(IsaId isa, const Variant &v, Fpm fpm)
{
    const std::string key = strprintf(
        "pvf/%s/%s/%s/%s/n%zu/seed%llu", SCHEMA, isaName(isa),
        v.tag().c_str(), fpmName(fpm), cfg.archFaults,
        static_cast<unsigned long long>(cfg.seed));
    if (auto cached = store.get(key))
        return countsFromJson(*cached);

    ArchConfig acfg;
    acfg.isa = isa;
    PvfCampaign campaign(imageFor(v, isa), acfg);
    campaign.setWatchdog({cfg.watchdogFactor, 10'000});
    exec::CheckpointPolicy policy;
    policy.enabled = cfg.checkpoint;
    policy.checkpoints = cfg.checkpoints;
    policy.earlyStop = cfg.checkpoint;
    policy.verifyPercent = cfg.verifyCheckpoint;
    campaign.setCheckpointPolicy(policy);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.archFaults);
    journalFaults += journal.storageFaults();
    OutcomeCounts c = campaign.run(fpm, cfg.archFaults, cfg.seed, ec);
    if (exec::shutdownRequested())
        return c; // interrupted: keep the journal, never cache a partial
    store.put(key, countsToJson(c));
    journal.removeFile();
    return c;
}

OutcomeCounts
VulnerabilityStack::svf(const Variant &v)
{
    const std::string key = strprintf(
        "svf/%s/%s/n%zu/seed%llu", SCHEMA, v.tag().c_str(), cfg.swFaults,
        static_cast<unsigned long long>(cfg.seed));
    if (auto cached = store.get(key))
        return countsFromJson(*cached);

    SvfCampaign campaign(irFor(v, 64));
    campaign.setWatchdog({cfg.watchdogFactor, 100'000});
    exec::CheckpointPolicy policy;
    policy.enabled = cfg.checkpoint;
    policy.checkpoints = cfg.checkpoints;
    policy.earlyStop = cfg.checkpoint;
    policy.verifyPercent = cfg.verifyCheckpoint;
    campaign.setCheckpointPolicy(policy);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.swFaults);
    journalFaults += journal.storageFaults();
    OutcomeCounts c = campaign.run(cfg.swFaults, cfg.seed, ec);
    if (exec::shutdownRequested())
        return c; // interrupted: keep the journal, never cache a partial
    store.put(key, countsToJson(c));
    journal.removeFile();
    return c;
}

VulnSplit
VulnerabilityStack::weightedAvf(const std::string &core, const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    double num_sdc = 0, num_crash = 0, num_det = 0, den = 0;
    for (Structure s : allStructures) {
        const double bits =
            static_cast<double>(sizer.structureBits(s));
        UarchCampaignResult r = uarch(core, v, s);
        num_sdc += bits * r.outcomes.sdcRate();
        num_crash += bits * r.outcomes.crashRate();
        num_det += bits * r.outcomes.detectedRate();
        den += bits;
    }
    VulnSplit out;
    out.sdc = num_sdc / den;
    out.crash = num_crash / den;
    out.detected = num_det / den;
    return out;
}

FpmShares
VulnerabilityStack::weightedFpmDist(const std::string &core,
                                    const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    double w[4] = {0, 0, 0, 0};
    for (Structure s : allStructures) {
        const double bits =
            static_cast<double>(sizer.structureBits(s));
        UarchCampaignResult r = uarch(core, v, s);
        if (r.samples == 0)
            continue;
        const double inv = bits / static_cast<double>(r.samples);
        w[0] += inv * static_cast<double>(r.fpms.wd);
        w[1] += inv * static_cast<double>(r.fpms.wi);
        w[2] += inv * static_cast<double>(r.fpms.woi);
        w[3] += inv * static_cast<double>(r.fpms.esc);
    }
    const double total = w[0] + w[1] + w[2] + w[3];
    FpmShares shares;
    if (total > 0) {
        shares.wd = w[0] / total;
        shares.wi = w[1] / total;
        shares.woi = w[2] / total;
        shares.esc = w[3] / total;
    }
    return shares;
}

VulnSplit
VulnerabilityStack::pvfSplit(IsaId isa, const Variant &v)
{
    return toSplit(pvf(isa, v, Fpm::WD));
}

VulnSplit
VulnerabilityStack::svfSplit(const Variant &v)
{
    return toSplit(svf(v));
}

VulnSplit
VulnerabilityStack::rPvf(const std::string &core, const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    const FpmShares dist = weightedFpmDist(core, v);
    // ESC is unobservable at the PVF layer; renormalise over the
    // software-reachable FPMs.
    const double reach = dist.wd + dist.wi + dist.woi;
    VulnSplit out;
    if (reach <= 0)
        return out;
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        const double w = dist.get(f) / reach;
        VulnSplit s = toSplit(pvf(cc.isa, v, f));
        out.sdc += w * s.sdc;
        out.crash += w * s.crash;
        out.detected += w * s.detected;
    }
    return out;
}

VulnerabilityStack::FitReport
VulnerabilityStack::fitReport(const std::string &core, const Variant &v,
                              double fitPerBit)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    FitReport report;
    for (Structure s : allStructures) {
        FitEntry e;
        e.structure = s;
        e.bits = sizer.structureBits(s);
        e.avf = uarch(core, v, s).avf();
        e.fit = e.avf * fitPerBit * static_cast<double>(e.bits);
        report.totalFit += e.fit;
        report.perStructure.push_back(e);
    }
    return report;
}

double
VulnerabilityStack::uarchMargin() const
{
    return samplingMargin(cfg.uarchFaults, 0.5, 0.99);
}

} // namespace vstack
