#include "vstack.h"

#include "arch/pvf.h"
#include "compiler/compile.h"
#include "ft/harden.h"
#include "kernel/kernel.h"
#include "support/fastpath.h"
#include "support/logging.h"
#include "support/stats.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace vstack
{

using namespace campaign_io;

VulnSplit
toSplit(const OutcomeCounts &c)
{
    VulnSplit s;
    s.sdc = c.sdcRate();
    s.crash = c.crashRate();
    s.detected = c.detectedRate();
    return s;
}

struct VulnerabilityStack::Cache
{
    std::mutex buildMu; ///< guards irs/images/kernels
    std::map<std::string, ir::Module> irs;
    std::map<std::string, Program> images;
    std::map<IsaId, Program> kernels;

    /** One (core, workload) cycle-level campaign.  The slot outlives
     *  its map entry (shared_ptr), so eviction never invalidates a
     *  campaign another thread is still running against; the per-slot
     *  build mutex makes distinct keys buildable concurrently while a
     *  shared key builds exactly once. */
    struct GoldenSlot
    {
        std::shared_ptr<UarchCampaign> campaign; ///< null until built
        std::mutex buildMu;
        uint64_t lastUse = 0;
    };
    std::mutex goldenMu; ///< guards the slot map + LRU bookkeeping
    std::map<std::string, std::shared_ptr<GoldenSlot>> golden;
    uint64_t useClock = 0;
    uint64_t goldenEvictions = 0;

    /**
     * Predecoded fast-path programs, pooled SEPARATELY from the golden
     * campaigns.  A campaign slot retains a golden trace (checkpoints
     * plus K digests — megabytes); a predecode is two orders of
     * magnitude smaller and far cheaper to rebuild, but losing one
     * forces a full decode pass on the next campaign over that
     * artefact.  Giving predecodes their own pool with its own
     * capacity means eviction never crosses kinds: a burst of big
     * traces can fill the campaign pool without flushing a single
     * predecode.  Capacity is 8x the campaign pool — predecodes are
     * keyed per (workload, isa) rather than per (core, workload), so
     * one entry serves every core that shares the ISA.
     */
    template <class T> struct PdSlot
    {
        std::shared_ptr<const T> pd; ///< null until built
        std::mutex buildMu;
        uint64_t lastUse = 0;
    };
    template <class T> using PdPool =
        std::map<std::string, std::shared_ptr<PdSlot<T>>>;
    PdPool<ArchPredecode> archPd;
    PdPool<IrPredecode> irPd;
    uint64_t predecodeEvictions = 0;

    /** Shared slot-map lookup + build-once + same-kind LRU eviction.
     *  `build` runs outside goldenMu (predecoding a 16 MiB image is
     *  not cheap) but under the slot's own build mutex, so distinct
     *  keys build concurrently and a shared key builds exactly once. */
    template <class T, class Build>
    std::shared_ptr<const T> predecodeFor(PdPool<T> &pool,
                                          const std::string &key,
                                          size_t capacity, Build &&build)
    {
        std::shared_ptr<PdSlot<T>> slot;
        {
            std::lock_guard<std::mutex> lock(goldenMu);
            auto it = pool.find(key);
            if (it == pool.end())
                it = pool.emplace(key, std::make_shared<PdSlot<T>>())
                         .first;
            slot = it->second;
            slot->lastUse = ++useClock;
        }
        {
            std::lock_guard<std::mutex> buildLock(slot->buildMu);
            if (!slot->pd)
                slot->pd = build();
        }
        std::shared_ptr<const T> out = slot->pd;
        {
            std::lock_guard<std::mutex> lock(goldenMu);
            while (pool.size() > capacity) {
                auto victim = pool.end();
                for (auto it = pool.begin(); it != pool.end(); ++it) {
                    if (it->first == key)
                        continue;
                    if (victim == pool.end() ||
                        it->second->lastUse < victim->second->lastUse)
                        victim = it;
                }
                if (victim == pool.end())
                    break;
                pool.erase(victim);
                ++predecodeEvictions;
            }
        }
        return out;
    }
};

VulnerabilityStack::VulnerabilityStack(const EnvConfig &cfg)
    : cfg(cfg), store(cfg.resultsDir), cache(std::make_unique<Cache>())
{
    // Resolve the environment's fault model once, strictly: a garbage
    // VSTACK_FAULT_MODEL must fail here, not silently run a default
    // campaign.  The spec is rewritten to its canonical tag so store
    // keys and journal headers are spelling-independent; an explicit
    // single-bit model resolves to null (the default fast path).
    if (!this->cfg.faultModel.empty()) {
        std::string err;
        auto m = fault::parseFaultModel(this->cfg.faultModel, err);
        if (!m)
            fatal("VSTACK_FAULT_MODEL: %s", err.c_str());
        this->cfg.faultModel = m->tag();
        if (!m->isDefault())
            model_ = std::move(m);
    }
}

VulnerabilityStack::~VulnerabilityStack() = default;

const ir::Module &
VulnerabilityStack::irFor(const Variant &v, int xlen)
{
    // One build mutex over all toolchain caches: suite prepare tasks
    // compile concurrently for different variants, and std::map node
    // stability keeps the returned references valid across later
    // insertions.
    std::lock_guard<std::mutex> lock(cache->buildMu);
    return irForUnlocked(v, xlen);
}

const ir::Module &
VulnerabilityStack::irForUnlocked(const Variant &v, int xlen)
{
    const std::string key = v.tag() + "/" + std::to_string(xlen);
    auto it = cache->irs.find(key);
    if (it != cache->irs.end())
        return it->second;

    mcl::FrontendResult fr =
        mcl::compileToIr(findWorkload(v.workload).source, xlen);
    if (!fr.ok)
        fatal("compile %s: %s", v.workload.c_str(), fr.error.c_str());
    ir::Module m = std::move(fr.module);
    if (v.hardened)
        m = hardenModule(m, defaultHardenOptions());
    return cache->irs.emplace(key, std::move(m)).first->second;
}

const Program &
VulnerabilityStack::imageFor(const Variant &v, IsaId isa)
{
    std::lock_guard<std::mutex> lock(cache->buildMu);
    return imageForUnlocked(v, isa);
}

const Program &
VulnerabilityStack::imageForUnlocked(const Variant &v, IsaId isa)
{
    const std::string key =
        v.tag() + "/" + isaName(isa);
    auto it = cache->images.find(key);
    if (it != cache->images.end())
        return it->second;

    if (!cache->kernels.count(isa))
        cache->kernels.emplace(isa, buildKernel(isa));

    const ir::Module &m = irForUnlocked(v, IsaSpec::get(isa).xlen);
    mcl::BuildResult build = mcl::buildUserFromIr(m, isa);
    if (!build.ok)
        fatal("codegen %s: %s", v.tag().c_str(), build.error.c_str());
    Program sys = buildSystemImage(cache->kernels.at(isa), build.program);
    return cache->images.emplace(key, std::move(sys)).first->second;
}

std::shared_ptr<UarchCampaign>
VulnerabilityStack::campaignFor(const std::string &core, const Variant &v)
{
    const std::string key = core + "/" + v.tag();
    std::shared_ptr<Cache::GoldenSlot> slot;
    {
        std::lock_guard<std::mutex> lock(cache->goldenMu);
        auto it = cache->golden.find(key);
        if (it == cache->golden.end())
            it = cache->golden
                     .emplace(key, std::make_shared<Cache::GoldenSlot>())
                     .first;
        slot = it->second;
        slot->lastUse = ++cache->useClock;
    }
    {
        std::lock_guard<std::mutex> build(slot->buildMu);
        if (!slot->campaign) {
            const CoreConfig &cc = coreByName(core);
            auto campaign = std::make_shared<UarchCampaign>(
                cc, imageFor(v, cc.isa));
            campaign->setWatchdog(uarchWatchdog(cfg));
            campaign->setCheckpointPolicy(checkpointPolicy(cfg));
            slot->campaign = std::move(campaign);
        }
    }
    std::shared_ptr<UarchCampaign> out = slot->campaign;
    {
        // Evict the oldest other slots down to the configured
        // capacity.  An evicted campaign only leaves memory once its
        // last in-flight user drops the shared_ptr.
        std::lock_guard<std::mutex> lock(cache->goldenMu);
        while (cache->golden.size() > std::max(1u, cfg.goldenCache)) {
            auto victim = cache->golden.end();
            for (auto it = cache->golden.begin();
                 it != cache->golden.end(); ++it) {
                if (it->first == key)
                    continue;
                if (victim == cache->golden.end() ||
                    it->second->lastUse < victim->second->lastUse)
                    victim = it;
            }
            if (victim == cache->golden.end())
                break;
            cache->golden.erase(victim);
            ++cache->goldenEvictions;
        }
    }
    return out;
}

std::unique_ptr<PvfCampaign>
VulnerabilityStack::makePvfCampaign(IsaId isa, const Variant &v)
{
    ArchConfig acfg;
    acfg.isa = isa;
    const Program &image = imageFor(v, isa);
    std::shared_ptr<const ArchPredecode> fast;
    if (cfg.fastpath && fastPathEnabled()) {
        fast = cache->predecodeFor(
            cache->archPd, v.tag() + "/" + isaName(isa),
            8 * std::max<size_t>(1, cfg.goldenCache),
            [&] { return predecodeImage(image, isa); });
    }
    auto campaign =
        std::make_unique<PvfCampaign>(image, acfg, std::move(fast));
    campaign->setWatchdog(pvfWatchdog(cfg));
    campaign->setCheckpointPolicy(checkpointPolicy(cfg));
    return campaign;
}

std::unique_ptr<SvfCampaign>
VulnerabilityStack::makeSvfCampaign(const Variant &v)
{
    const ir::Module &m = irFor(v, 64);
    std::shared_ptr<const IrPredecode> fast;
    if (cfg.fastpath && fastPathEnabled()) {
        // The predecode holds pointers into the module, which lives in
        // the toolchain cache — never evicted, so the pool entry can't
        // outlive it.
        fast = cache->predecodeFor(
            cache->irPd, v.tag() + "/64",
            8 * std::max<size_t>(1, cfg.goldenCache),
            [&] { return predecodeIr(m); });
    }
    auto campaign =
        std::make_unique<SvfCampaign>(m, std::move(fast));
    campaign->setWatchdog(svfWatchdog(cfg));
    campaign->setCheckpointPolicy(checkpointPolicy(cfg));
    return campaign;
}

uint64_t
VulnerabilityStack::goldenEvictions() const
{
    std::lock_guard<std::mutex> lock(cache->goldenMu);
    return cache->goldenEvictions;
}

uint64_t
VulnerabilityStack::predecodeEvictions() const
{
    std::lock_guard<std::mutex> lock(cache->goldenMu);
    return cache->predecodeEvictions;
}

UarchCampaignResult
VulnerabilityStack::uarch(const std::string &core, const Variant &v,
                          Structure s)
{
    const std::string key = uarchKey(cfg, core, v, s);
    if (auto cached = store.get(key))
        return uarchFromJson(*cached);

    std::shared_ptr<UarchCampaign> campaign = campaignFor(core, v);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.uarchFaults);
    ec.cancel = cancelToken;
    journalFaults += journal.storageFaults();
    UarchCampaignResult r =
        campaign->run(s, cfg.uarchFaults, cfg.seed, ec, model_.get());
    if (exec::drainRequested(ec))
        return r; // interrupted: keep the journal, never cache a partial
    store.put(key, uarchToJson(r));
    journal.removeFile();
    return r;
}

UarchGolden
VulnerabilityStack::uarchGolden(const std::string &core, const Variant &v)
{
    const std::string key = goldenKey(core, v);
    if (auto cached = store.get(key))
        return goldenFromJson(*cached);
    const UarchGolden g = campaignFor(core, v)->golden();
    store.put(key, goldenToJson(g));
    return g;
}

OutcomeCounts
VulnerabilityStack::pvf(IsaId isa, const Variant &v, Fpm fpm)
{
    const std::string key = pvfKey(cfg, isa, v, fpm);
    if (auto cached = store.get(key))
        return countsFromJson(*cached);

    std::unique_ptr<PvfCampaign> campaign = makePvfCampaign(isa, v);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.archFaults);
    ec.cancel = cancelToken;
    journalFaults += journal.storageFaults();
    OutcomeCounts c =
        campaign->run(fpm, cfg.archFaults, cfg.seed, ec, model_.get());
    if (exec::drainRequested(ec))
        return c; // interrupted: keep the journal, never cache a partial
    store.put(key, countsToJson(c));
    journal.removeFile();
    return c;
}

OutcomeCounts
VulnerabilityStack::svf(const Variant &v)
{
    const std::string key = svfKey(cfg, v);
    if (auto cached = store.get(key))
        return countsFromJson(*cached);

    std::unique_ptr<SvfCampaign> campaign = makeSvfCampaign(v);
    exec::Journal journal;
    exec::ExecConfig ec = execPolicy(cfg, journal, key, cfg.swFaults);
    ec.cancel = cancelToken;
    journalFaults += journal.storageFaults();
    OutcomeCounts c =
        campaign->run(cfg.swFaults, cfg.seed, ec, model_.get());
    if (exec::drainRequested(ec))
        return c; // interrupted: keep the journal, never cache a partial
    store.put(key, countsToJson(c));
    journal.removeFile();
    return c;
}

VulnSplit
VulnerabilityStack::weightedAvf(const std::string &core, const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    double num_sdc = 0, num_crash = 0, num_det = 0, den = 0;
    for (Structure s : allStructures) {
        const double bits =
            static_cast<double>(sizer.structureBits(s));
        UarchCampaignResult r = uarch(core, v, s);
        num_sdc += bits * r.outcomes.sdcRate();
        num_crash += bits * r.outcomes.crashRate();
        num_det += bits * r.outcomes.detectedRate();
        den += bits;
    }
    VulnSplit out;
    out.sdc = num_sdc / den;
    out.crash = num_crash / den;
    out.detected = num_det / den;
    return out;
}

FpmShares
VulnerabilityStack::weightedFpmDist(const std::string &core,
                                    const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    double w[4] = {0, 0, 0, 0};
    for (Structure s : allStructures) {
        const double bits =
            static_cast<double>(sizer.structureBits(s));
        UarchCampaignResult r = uarch(core, v, s);
        if (r.samples == 0)
            continue;
        const double inv = bits / static_cast<double>(r.samples);
        w[0] += inv * static_cast<double>(r.fpms.wd);
        w[1] += inv * static_cast<double>(r.fpms.wi);
        w[2] += inv * static_cast<double>(r.fpms.woi);
        w[3] += inv * static_cast<double>(r.fpms.esc);
    }
    const double total = w[0] + w[1] + w[2] + w[3];
    FpmShares shares;
    if (total > 0) {
        shares.wd = w[0] / total;
        shares.wi = w[1] / total;
        shares.woi = w[2] / total;
        shares.esc = w[3] / total;
    }
    return shares;
}

VulnSplit
VulnerabilityStack::pvfSplit(IsaId isa, const Variant &v)
{
    return toSplit(pvf(isa, v, Fpm::WD));
}

VulnSplit
VulnerabilityStack::svfSplit(const Variant &v)
{
    return toSplit(svf(v));
}

VulnSplit
VulnerabilityStack::rPvf(const std::string &core, const Variant &v)
{
    const CoreConfig &cc = coreByName(core);
    const FpmShares dist = weightedFpmDist(core, v);
    // ESC is unobservable at the PVF layer; renormalise over the
    // software-reachable FPMs.
    const double reach = dist.wd + dist.wi + dist.woi;
    VulnSplit out;
    if (reach <= 0)
        return out;
    for (Fpm f : {Fpm::WD, Fpm::WI, Fpm::WOI}) {
        const double w = dist.get(f) / reach;
        VulnSplit s = toSplit(pvf(cc.isa, v, f));
        out.sdc += w * s.sdc;
        out.crash += w * s.crash;
        out.detected += w * s.detected;
    }
    return out;
}

VulnerabilityStack::FitReport
VulnerabilityStack::fitReport(const std::string &core, const Variant &v,
                              double fitPerBit)
{
    const CoreConfig &cc = coreByName(core);
    CycleSim sizer(cc);
    FitReport report;
    for (Structure s : allStructures) {
        FitEntry e;
        e.structure = s;
        e.bits = sizer.structureBits(s);
        e.avf = uarch(core, v, s).avf();
        e.fit = e.avf * fitPerBit * static_cast<double>(e.bits);
        report.totalFit += e.fit;
        report.perStructure.push_back(e);
    }
    return report;
}

double
VulnerabilityStack::uarchMargin() const
{
    return samplingMargin(cfg.uarchFaults, 0.5, 0.99);
}

} // namespace vstack
