/**
 * @file
 * The cross-layer vulnerability-stack API — the library's front door.
 *
 * A VulnerabilityStack instance owns the toolchain (compiler, kernel,
 * workloads), the three injection engines (microarchitectural /
 * architectural / software), and a result cache, and exposes the
 * paper's metrics:
 *
 *  - AVF: cross-layer vulnerability from microarchitecture-level
 *    injection (per structure, and size-weighted per benchmark);
 *  - HVF + FPM distribution: hardware-layer visibility of the same
 *    campaigns (WD / WI / WOI / ESC);
 *  - PVF: architecture-level injection per fault propagation model;
 *  - SVF: software-level (IR) injection, WD-only, user code only;
 *  - rPVF: PVF-per-FPM weighted by the HVF-measured, size-weighted
 *    FPM distribution (Section V).
 *
 * Every campaign is deterministic in (seed, sample count) and
 * memoised in the on-disk result store.
 */
#ifndef VSTACK_CORE_VSTACK_H
#define VSTACK_CORE_VSTACK_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "core/campaign_io.h"
#include "exec/cancel.h"
#include "core/resultstore.h"
#include "fault/model.h"
#include "gefin/campaign.h"
#include "machine/fpm.h"
#include "machine/outcome.h"
#include "support/env.h"
#include "uarch/config.h"

namespace vstack
{

class PvfCampaign;
class SvfCampaign;

/** SDC/Crash/Detected rates of one measurement (any layer). */
struct VulnSplit
{
    double sdc = 0;
    double crash = 0;
    double detected = 0;

    double total() const { return sdc + crash; }
};

/** Size-weighted FPM shares (sums to 1 when any faults are visible). */
struct FpmShares
{
    double wd = 0, wi = 0, woi = 0, esc = 0;

    double get(Fpm f) const
    {
        switch (f) {
          case Fpm::WD: return wd;
          case Fpm::WI: return wi;
          case Fpm::WOI: return woi;
          case Fpm::ESC: return esc;
        }
        return 0;
    }
};

class VulnerabilityStack
{
  public:
    /** @throws nothing, but a garbage cfg.faultModel (VSTACK_FAULT_MODEL)
     *  is a one-line fatal error here — the stack is the first layer
     *  that can link the fault library, so this is where the env
     *  contract's strict validation lands. */
    explicit VulnerabilityStack(const EnvConfig &cfg);
    ~VulnerabilityStack();

    const EnvConfig &config() const { return cfg; }

    /** The environment's default fault model (null = the single-bit
     *  default); per-spec suite overrides are resolved in
     *  makeCampaignExec instead. */
    const std::shared_ptr<const fault::FaultModel> &faultModel() const
    {
        return model_;
    }

    /** @name Build artifacts (cached in-process; thread-safe) @{ */
    const ir::Module &irFor(const Variant &v, int xlen);
    /** Bootable kernel+user system image. */
    const Program &imageFor(const Variant &v, IsaId isa);
    /** @} */

    /** @name Campaign construction (the suite scheduler's hooks) @{ */
    /**
     * The cycle-level campaign (golden run + checkpoint trace) for one
     * (core, workload), shared by its five structure campaigns.  Kept
     * in a capacity-bounded LRU (VSTACK_GOLDEN_CACHE, >= 1): a
     * recorded trace pins the checkpoints' COW pages, so an unbounded
     * map across a report sweep would hold hundreds of MB.  Evicted
     * entries stay alive while callers hold the returned pointer.
     * Thread-safe; concurrent calls for the same key build once.
     */
    std::shared_ptr<UarchCampaign> campaignFor(const std::string &core,
                                               const Variant &v);
    /** Fresh PVF campaign (runs the golden on construction) with the
     *  environment's watchdog/checkpoint policy applied. */
    std::unique_ptr<PvfCampaign> makePvfCampaign(IsaId isa,
                                                 const Variant &v);
    /** Fresh SVF campaign, configured like makePvfCampaign(). */
    std::unique_ptr<SvfCampaign> makeSvfCampaign(const Variant &v);
    /** @} */

    /** @name Campaigns (memoised on disk) @{ */
    /** Microarchitecture-level campaign: AVF + HVF + FPMs. */
    UarchCampaignResult uarch(const std::string &core, const Variant &v,
                              Structure s);
    /** Golden cycle-level run statistics. */
    UarchGolden uarchGolden(const std::string &core, const Variant &v);
    /** Architecture-level campaign for one FPM. */
    OutcomeCounts pvf(IsaId isa, const Variant &v, Fpm fpm);
    /** Software-level campaign (LLFI analog; 64-bit IR only). */
    OutcomeCounts svf(const Variant &v);
    /** @} */

    /** @name Derived paper metrics @{ */
    /** Structure-size (FIT) weighted cross-layer AVF of a benchmark. */
    VulnSplit weightedAvf(const std::string &core, const Variant &v);
    /** Size-weighted FPM distribution (Fig. 6), ESC included. */
    FpmShares weightedFpmDist(const std::string &core, const Variant &v);
    /** Typical PVF (WD model only, as PVF studies use). */
    VulnSplit pvfSplit(IsaId isa, const Variant &v);
    /** SVF split. */
    VulnSplit svfSplit(const Variant &v);
    /** rPVF: PVF-per-FPM weighted by the core's FPM distribution. */
    VulnSplit rPvf(const std::string &core, const Variant &v);
    /** @} */

    /**
     * FIT-rate report (the paper's footnote 1):
     * FIT(s) = AVF(s) * FIT(bit) * bits(s), summed over structures.
     *
     * @param fitPerBit  per-bit FIT rate from technology data
     *                   (defaults to 1e-4 FIT/bit, a typical planar
     *                   SRAM ballpark)
     */
    struct FitEntry
    {
        Structure structure;
        uint64_t bits;
        double avf;
        double fit;
    };
    struct FitReport
    {
        std::vector<FitEntry> perStructure;
        double totalFit = 0;
    };
    FitReport fitReport(const std::string &core, const Variant &v,
                        double fitPerBit = 1e-4);

    /** Sampling margin of error for the microarch campaigns (99%). */
    double uarchMargin() const;

    /**
     * Corrupt storage records quarantined so far by this instance:
     * damaged result-cache entries plus damaged journal records found
     * while resuming campaigns.  Every count means a record was moved
     * to a `.corrupt` sidecar and its data recomputed, never silently
     * trusted.  CLI drivers surface this as the `storageFaults` notice
     * (on stderr, so campaign reports stay byte-comparable).
     */
    uint64_t storageFaults() const
    {
        return store.storageFaults() + journalFaults;
    }

    /** Journal faults found outside this instance's own campaign entry
     *  points (the suite scheduler opens journals itself). */
    void noteStorageFaults(uint64_t n) { journalFaults += n; }

    /** The on-disk result cache (shared with the suite scheduler). */
    ResultStore &resultStore() { return store; }

    /**
     * Arm the serial entry points (uarch / pvf / svf) with a
     * cooperative cancel token: a fired token drains the running
     * campaign like a shutdown signal (journal kept, partial never
     * cached).  Scoped to the caller's run — nullptr disarms.  Not for
     * concurrent suites over one stack; the pooled scheduler threads
     * its token per campaign instead (SuiteOptions::cancel).
     */
    void setCancel(const exec::CancelToken *t) { cancelToken = t; }

    /** Golden-campaign LRU evictions so far (progress diagnostics;
     *  each one means redoing a golden run + trace). */
    uint64_t goldenEvictions() const;

    /** Predecode-pool LRU evictions so far.  Predecoded fast-path
     *  programs live in their own pool with its own (larger) capacity,
     *  so a handful of big golden traces can never evict every
     *  predecode — see DESIGN.md §12. */
    uint64_t predecodeEvictions() const;

  private:
    const ir::Module &irForUnlocked(const Variant &v, int xlen);
    const Program &imageForUnlocked(const Variant &v, IsaId isa);

    EnvConfig cfg;
    std::shared_ptr<const fault::FaultModel> model_; ///< null = single-bit
    ResultStore store;
    const exec::CancelToken *cancelToken = nullptr;
    uint64_t journalFaults = 0;
    struct Cache;
    std::unique_ptr<Cache> cache;
};

/** Convert an outcome count to rates (denominator = all samples). */
VulnSplit toSplit(const OutcomeCounts &c);

} // namespace vstack

#endif // VSTACK_CORE_VSTACK_H
