#include "suite.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>

#include "arch/pvf.h"
#include "core/campaign_io.h"
#include "exec/driver.h"
#include "support/logging.h"
#include "swfi/svf.h"
#include "uarch/config.h"
#include "workloads/workloads.h"

namespace vstack
{

using namespace campaign_io;

const char *
campaignLayerName(CampaignLayer layer)
{
    switch (layer) {
      case CampaignLayer::Uarch: return "uarch";
      case CampaignLayer::Pvf: return "pvf";
      case CampaignLayer::Svf: return "svf";
    }
    return "?";
}

std::string
CampaignSpec::label() const
{
    switch (layer) {
      case CampaignLayer::Uarch:
        return strprintf("uarch/%s/%s/%s", core.c_str(),
                         variant.tag().c_str(), structureName(structure));
      case CampaignLayer::Pvf:
        return strprintf("pvf/%s/%s/%s", isaName(isa),
                         variant.tag().c_str(), fpmName(fpm));
      case CampaignLayer::Svf:
        return strprintf("svf/%s", variant.tag().c_str());
    }
    return "?";
}

void
CampaignPlan::addUarch(const std::string &core, const Variant &v,
                       Structure s)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Uarch;
    spec.core = core;
    spec.variant = v;
    spec.structure = s;
    specs_.push_back(std::move(spec));
}

void
CampaignPlan::addUarchAll(const std::string &core, const Variant &v)
{
    for (Structure s : allStructures)
        addUarch(core, v, s);
}

void
CampaignPlan::applyFaultModel(size_t from, const std::string &fm)
{
    for (size_t i = from; i < specs_.size(); ++i)
        specs_[i].faultModel = fm;
}

void
CampaignPlan::addPvf(IsaId isa, const Variant &v, Fpm fpm)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Pvf;
    spec.isa = isa;
    spec.variant = v;
    spec.fpm = fpm;
    specs_.push_back(std::move(spec));
}

void
CampaignPlan::addSvf(const Variant &v)
{
    CampaignSpec spec;
    spec.layer = CampaignLayer::Svf;
    spec.variant = v;
    specs_.push_back(std::move(spec));
}

std::string
campaignKey(const EnvConfig &cfg, const CampaignSpec &spec)
{
    switch (spec.layer) {
      case CampaignLayer::Uarch:
        return uarchKey(cfg, spec.core, spec.variant, spec.structure,
                        spec.faultModel);
      case CampaignLayer::Pvf:
        return pvfKey(cfg, spec.isa, spec.variant, spec.fpm,
                      spec.faultModel);
      case CampaignLayer::Svf:
        return svfKey(cfg, spec.variant, spec.faultModel);
    }
    return {};
}

size_t
campaignSamples(const EnvConfig &cfg, const CampaignSpec &spec)
{
    switch (spec.layer) {
      case CampaignLayer::Uarch: return cfg.uarchFaults;
      case CampaignLayer::Pvf: return cfg.archFaults;
      case CampaignLayer::Svf: return cfg.swFaults;
    }
    return 0;
}

Json
foldCampaignSamples(const CampaignSpec &spec,
                    const std::vector<std::optional<Json>> &samples)
{
    if (spec.layer == CampaignLayer::Uarch)
        return uarchToJson(foldUarchSamples(samples));
    return countsToJson(foldOutcomeSamples(samples));
}

void
decodeCampaignOutcome(CampaignOutcome &o, const Json &result)
{
    if (o.spec.layer == CampaignLayer::Uarch)
        o.uarch = uarchFromJson(result);
    else
        o.counts = countsFromJson(result);
}

Json
specToJson(const CampaignSpec &spec)
{
    Json j = Json::object();
    j.set("layer", campaignLayerName(spec.layer));
    j.set("workload", spec.variant.workload);
    j.set("harden", spec.variant.hardened);
    switch (spec.layer) {
      case CampaignLayer::Uarch:
        j.set("core", spec.core);
        j.set("structure", structureName(spec.structure));
        break;
      case CampaignLayer::Pvf:
        j.set("isa", isaName(spec.isa));
        j.set("fpm", fpmName(spec.fpm));
        break;
      case CampaignLayer::Svf:
        break;
    }
    if (!spec.faultModel.empty())
        j.set("faultModel", spec.faultModel);
    return j;
}

bool
specFromJson(const Json &j, CampaignSpec &spec, std::string &err)
{
    if (!j.isObject() || !j.has("layer") || !j.has("workload")) {
        err = "campaign spec: expected an object with \"layer\" and "
              "\"workload\"";
        return false;
    }
    const std::string layer = j.at("layer").asString();
    spec.variant.workload = j.at("workload").asString();
    spec.variant.hardened = j.has("harden") && j.at("harden").asBool();
    if (layer == "uarch") {
        spec.layer = CampaignLayer::Uarch;
        if (!j.has("core") || !j.has("structure")) {
            err = "campaign spec: uarch needs \"core\" and "
                  "\"structure\"";
            return false;
        }
        spec.core = j.at("core").asString();
        if (!structureFromName(j.at("structure").asString(),
                               spec.structure)) {
            err = "campaign spec: unknown structure '" +
                  j.at("structure").asString() + "'";
            return false;
        }
    } else if (layer == "pvf") {
        spec.layer = CampaignLayer::Pvf;
        if (!j.has("isa") || !j.has("fpm")) {
            err = "campaign spec: pvf needs \"isa\" and \"fpm\"";
            return false;
        }
        const std::string in = j.at("isa").asString();
        if (in == isaName(IsaId::Av32)) {
            spec.isa = IsaId::Av32;
        } else if (in == isaName(IsaId::Av64)) {
            spec.isa = IsaId::Av64;
        } else {
            err = "campaign spec: unknown isa '" + in + "'";
            return false;
        }
        if (!fpmFromName(j.at("fpm").asString().c_str(), spec.fpm)) {
            err = "campaign spec: unknown fpm '" +
                  j.at("fpm").asString() + "'";
            return false;
        }
    } else if (layer == "svf") {
        spec.layer = CampaignLayer::Svf;
    } else {
        err = "campaign spec: unknown layer '" + layer + "'";
        return false;
    }
    if (j.has("faultModel")) {
        std::string ferr;
        auto m = fault::parseFaultModel(j.at("faultModel").asString(),
                                        ferr);
        if (!m) {
            err = "campaign spec: " + ferr;
            return false;
        }
        spec.faultModel = m->tag();
    } else {
        spec.faultModel.clear();
    }
    return true;
}

CampaignExec::CampaignExec() = default;
CampaignExec::CampaignExec(CampaignExec &&) noexcept = default;
CampaignExec &CampaignExec::operator=(CampaignExec &&) noexcept = default;
CampaignExec::~CampaignExec() = default;

void
CampaignExec::reset()
{
    driver.reset();
    model.reset();
    uarchCampaign.reset();
    pvfCampaign.reset();
    svfCampaign.reset();
}

CampaignExec
makeCampaignExec(VulnerabilityStack &stack, const CampaignSpec &spec,
                 size_t n)
{
    const uint64_t seed = stack.config().seed;
    CampaignExec ce;
    // Resolve the spec's fault model: a per-spec tag overrides the
    // stack's environment default, and the single-bit default stays a
    // null pointer (the drivers' byte-identical fast path).  Spec tags
    // were validated at manifest/wire parse time, so a failure here is
    // a programming error, not an input error.
    if (spec.faultModel.empty()) {
        ce.model = stack.faultModel();
    } else {
        std::string err;
        auto m = fault::parseFaultModel(spec.faultModel, err);
        if (!m)
            fatal("campaign %s: fault model: %s", spec.label().c_str(),
                  err.c_str());
        if (!m->isDefault())
            ce.model = std::move(m);
    }
    switch (spec.layer) {
      case CampaignLayer::Uarch:
        ce.uarchCampaign = stack.campaignFor(spec.core, spec.variant);
        ce.driver = std::make_unique<UarchDriver>(
            *ce.uarchCampaign, spec.structure, n, seed, ce.model);
        break;
      case CampaignLayer::Pvf:
        ce.pvfCampaign = stack.makePvfCampaign(spec.isa, spec.variant);
        ce.driver = std::make_unique<PvfDriver>(*ce.pvfCampaign,
                                                spec.fpm, n, seed,
                                                ce.model);
        break;
      case CampaignLayer::Svf:
        ce.svfCampaign = stack.makeSvfCampaign(spec.variant);
        ce.driver = std::make_unique<SvfDriver>(*ce.svfCampaign, n,
                                                seed, ce.model);
        break;
    }
    return ce;
}

namespace
{

/** One unique campaign of the suite (duplicate specs share a Run). */
struct Run
{
    enum class St {
        Pending,    ///< waiting for a worker to prepare it
        Preparing,  ///< golden run / trace / journal replay in flight
        Running,    ///< samples claimable
        FinalReady, ///< all samples done; fold/verify/store pending
        Finalizing,
        Done,
        Failed, ///< contained failure (golden run); nothing stored
    };

    CampaignSpec spec; ///< first plan spec naming this campaign
    size_t planIndex = 0;
    std::string key;
    size_t n = 0;
    St st = St::Pending;
    bool cacheHit = false;
    std::string error; ///< set when st == Failed

    // Built by the prepare task.  The campaign objects must outlive
    // the driver that references them (CampaignExec guarantees it).
    CampaignExec ce;
    std::unique_ptr<exec::Journal> journal;
    exec::ExecConfig ec;

    std::vector<std::optional<Json>> results; ///< index order
    std::vector<size_t> todo; ///< pending samples, dispatch order
    size_t cursor = 0;        ///< next todo slot to claim
    size_t outstanding = 0;   ///< claimed but unfinished samples

    Json resultJson; ///< final store payload (set when Done)
};

struct Sched
{
    VulnerabilityStack &stack;
    const SuiteOptions &opts;
    EnvConfig cfg;

    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<Run>> runs; ///< unique campaigns
    std::vector<Run *> bySpec;              ///< plan index -> run

    bool abort = false;
    std::exception_ptr error;
    size_t errorIndex = SIZE_MAX;

    size_t campaignsDone = 0;
    size_t samplesDone = 0;  ///< finished incl. journal replays
    size_t samplesTotal = 0; ///< across all non-cached campaigns
    size_t liveSamples = 0;  ///< actually simulated this run
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();

    Sched(VulnerabilityStack &stack, const SuiteOptions &opts)
        : stack(stack), opts(opts), cfg(stack.config())
    {
    }

    /** True when the suite should stop claiming work: a process-wide
     *  shutdown signal or this suite's cancel token. */
    bool drained() const
    {
        return exec::shutdownRequested() ||
               exec::cancelRequested(opts.cancel);
    }

    /** Record a suite-fatal error for the earliest affected plan
     *  entry (call under mu). */
    void fail(size_t planIndex, std::exception_ptr e)
    {
        if (planIndex < errorIndex) {
            errorIndex = planIndex;
            error = e;
        }
        abort = true;
        cv.notify_all();
    }

    /** Emit a progress snapshot (call under mu). */
    void reportProgress()
    {
        if (!opts.progress)
            return;
        SuiteProgress p;
        p.campaignsDone = campaignsDone;
        p.campaignsTotal = runs.size();
        p.samplesDone = samplesDone;
        p.samplesTotal = samplesTotal;
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        p.samplesPerSec =
            sec > 0 ? static_cast<double>(liveSamples) / sec : 0.0;
        p.storageFaults = stack.storageFaults();
        p.goldenEvictions = stack.goldenEvictions();
        opts.progress(p);
    }
};

/**
 * Prepare task: build the campaign + driver (golden run, trace
 * recording), open the campaign's journal, replay + spot-verify its
 * records, and sort the remaining samples into dispatch order.  Runs
 * unlocked on one worker; concurrent prepares of campaigns sharing a
 * UarchCampaign serialize inside ensureTrace().
 */
void
prepareRun(Sched &S, Run &r)
{
    CampaignExec ce = makeCampaignExec(S.stack, r.spec, r.n);
    exec::LayerDriver *driver = ce.driver.get();
    exec::prepareDriver(*driver);

    auto journal = std::make_unique<exec::Journal>();
    exec::ExecConfig ec =
        execPolicy(S.cfg, *journal, r.key, r.n, r.spec.faultModel);
    ec.cancel = S.opts.cancel;
    const uint64_t journalFaults = journal->storageFaults();

    // Replay journaled samples; collect the remainder as work items
    // (mirrors exec::runSamples).
    std::vector<std::optional<Json>> results(r.n);
    std::vector<size_t> todo;
    todo.reserve(r.n);
    std::vector<size_t> verify;
    size_t replayed = 0;
    for (size_t i = 0; i < r.n; ++i) {
        const Json *rec = ec.journal ? ec.journal->find(i) : nullptr;
        if (rec) {
            if (rec->has("r")) {
                results[i] = rec->at("r");
                if (exec::verifyReplaySelected(i, ec.verifyReplay))
                    verify.push_back(i);
            }
            ++replayed; // an "err" record replays as a quarantine
        } else {
            todo.push_back(i);
        }
    }

    if (!verify.empty()) {
        // Spot-check the replay before trusting it (serial, in this
        // task), with the exact failure semantics of exec::runSamples.
        auto ctx = driver->makeCtx();
        for (size_t i : verify) {
            const std::string want = ec.journal->find(i)->at("r").dump();
            std::string got;
            try {
                got = exec::runDriverSample(*driver, *ctx, i).dump();
            } catch (const SimError &e) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " replayed from the journal but failed to "
                    "re-simulate: " + e.what());
            }
            if (got != want) {
                throw ReplayDivergence(
                    "verify-replay: sample " + std::to_string(i) +
                    " diverged from its journaled record (journal " +
                    want + ", re-run " + got +
                    "); the journal does not describe this campaign");
            }
        }
    }

    if (driver->scheduled()) {
        // Dispatch order only; stable so equal keys keep index order.
        const exec::LayerDriver &d = *driver;
        std::stable_sort(todo.begin(), todo.end(),
                         [&d](size_t a, size_t b) {
                             return d.scheduleKey(a) < d.scheduleKey(b);
                         });
    }

    std::lock_guard<std::mutex> lock(S.mu);
    r.ce = std::move(ce);
    r.journal = std::move(journal);
    r.ec = ec;
    r.results = std::move(results);
    r.todo = std::move(todo);
    if (journalFaults)
        S.stack.noteStorageFaults(journalFaults);
    S.samplesDone += replayed;
    r.st = r.todo.empty() ? Run::St::FinalReady : Run::St::Running;
    S.reportProgress();
    S.cv.notify_all();
}

/**
 * Finalize task: the cold verification audit, the index-ordered fold,
 * the store write, and journal retirement.  Unlocked on one worker.
 */
void
finalizeRun(Sched &S, Run &r)
{
    verifyDriverSamples(*r.ce.driver, r.results);
    Json out = foldCampaignSamples(r.spec, r.results);
    if (!S.drained()) {
        // Interrupted or cancelled: keep the journal, never cache a
        // partial (the serial entry points make the same call).
        S.stack.resultStore().put(r.key, out);
        if (r.journal)
            r.journal->removeFile();
    }

    std::lock_guard<std::mutex> lock(S.mu);
    r.resultJson = std::move(out);
    // Release the campaign's working set now, not at suite teardown:
    // a long plan would otherwise accumulate every golden trace,
    // checkpoint chain, and sample buffer in memory at once.  (Stale
    // worker-local Ctx objects reference only stack-owned state, so
    // dropping the campaign here is safe.)
    r.ce.reset();
    r.journal.reset();
    r.ec.journal = nullptr;
    r.results = {};
    r.todo = {};
    r.st = Run::St::Done;
    ++S.campaignsDone;
    S.reportProgress();
    S.cv.notify_all();
}

/** In-process sample execution (claim of one sample), mirroring the
 *  retry/quarantine/journal semantics of exec::runSamples. */
void
runOneSample(Sched &S, Run &r, size_t i, exec::LayerDriver::Ctx &ctx)
{
    std::optional<Json> payload;
    std::string quarantine;
    for (unsigned attempt = 0;; ++attempt) {
        try {
            payload = exec::runDriverSample(*r.ce.driver, ctx, i);
            break;
        } catch (const SimError &e) {
            if (attempt >= r.ec.retries) {
                quarantine = e.what();
                break;
            }
        }
    }

    std::lock_guard<std::mutex> lock(S.mu);
    if (payload) {
        if (r.ec.journal)
            r.ec.journal->append(i, *payload);
        r.results[i] = std::move(*payload);
    } else if (r.ec.journal) {
        r.ec.journal->appendError(i, quarantine);
    }
    ++S.samplesDone;
    ++S.liveSamples;
    --r.outstanding;
    if (r.cursor >= r.todo.size() && r.outstanding == 0) {
        r.st = Run::St::FinalReady;
        S.cv.notify_all();
    }
    S.reportProgress();
}

/** Isolated-mode sample execution: supervise one forked child per
 *  batch, with the re-batch/triage loop of runSamplesIsolated. */
void
runIsolatedSamples(Sched &S, Run &r, std::vector<size_t> pending)
{
    std::unique_ptr<exec::LayerDriver::Ctx> childCtx;
    const std::function<Json(size_t)> childRun = [&](size_t i) -> Json {
        for (unsigned attempt = 0;; ++attempt) {
            try {
                if (!childCtx)
                    childCtx = r.ce.driver->makeCtx();
                return exec::runDriverSample(*r.ce.driver, *childCtx, i);
            } catch (const SimError &) {
                if (attempt >= r.ec.retries)
                    throw;
                childCtx = {}; // retry on a fresh simulator
            }
        }
    };

    auto settle = [&](size_t i, const std::optional<Json> &payload,
                      auto journalAppend) {
        std::lock_guard<std::mutex> lock(S.mu);
        if (r.ec.journal)
            journalAppend();
        if (payload)
            r.results[i] = *payload;
        ++S.samplesDone;
        ++S.liveSamples;
        --r.outstanding;
        S.reportProgress();
    };

    std::map<size_t, unsigned> hostFailures;
    while (!pending.empty()) {
        auto outcomes =
            exec::runIsolatedBatch(pending, r.ec.sandbox, childRun);
        std::vector<size_t> requeue;
        for (size_t k = 0; k < pending.size(); ++k) {
            const size_t i = pending[k];
            exec::IsolatedOutcome &o = outcomes[k];
            switch (o.kind) {
              case exec::IsolatedOutcome::Kind::Ok:
                settle(i, o.payload, [&] {
                    r.ec.journal->append(i, o.payload);
                });
                break;
              case exec::IsolatedOutcome::Kind::SimErr:
                // The child already exhausted SimError retries.
                settle(i, std::nullopt, [&] {
                    r.ec.journal->appendError(i, o.errMsg);
                });
                break;
              case exec::IsolatedOutcome::Kind::Host:
                if (!exec::drainRequested(r.ec) &&
                    ++hostFailures[i] <= r.ec.retries) {
                    requeue.push_back(i);
                } else if (!exec::drainRequested(r.ec)) {
                    settle(i, std::nullopt, [&] {
                        r.ec.journal->appendHostFault(i, o.host.describe(),
                                                      o.host.toJson());
                    });
                }
                break;
              case exec::IsolatedOutcome::Kind::NotRun:
                if (!exec::drainRequested(r.ec))
                    requeue.push_back(i);
                break;
            }
        }
        if (exec::drainRequested(r.ec))
            break; // drop unfinished work; journal stays valid
        pending = std::move(requeue);
    }

    std::lock_guard<std::mutex> lock(S.mu);
    if (r.cursor >= r.todo.size() && r.outstanding == 0) {
        r.st = Run::St::FinalReady;
        S.cv.notify_all();
    }
}

/**
 * The worker loop.  Claim priority: (1) finalize a finished campaign,
 * (2) a sample from the earliest campaign with claimable samples,
 * (3) prepare the earliest pending campaign.  (3) below (2) means
 * workers stay on sample throughput while any exists and use campaign
 * tails (and the suite's cold start) to run golden work — that is the
 * cross-campaign overlap the scheduler exists for.
 */
void
workerLoop(Sched &S, unsigned)
{
    // This worker's private simulation contexts, one per campaign it
    // has touched; dropped as soon as the campaign has no more
    // claimable samples.
    std::map<Run *, std::unique_ptr<exec::LayerDriver::Ctx>> ctxs;

    std::unique_lock<std::mutex> lock(S.mu);
    for (;;) {
        if (S.abort || S.drained())
            return;

        Run *fin = nullptr, *samp = nullptr, *prep = nullptr;
        bool allDone = true;
        for (auto &up : S.runs) {
            Run *r = up.get();
            if (r->st != Run::St::Done && r->st != Run::St::Failed)
                allDone = false;
            if (!fin && r->st == Run::St::FinalReady)
                fin = r;
            if (!samp && r->st == Run::St::Running &&
                r->cursor < r->todo.size())
                samp = r;
            if (!prep && r->st == Run::St::Pending)
                prep = r;
        }
        if (allDone)
            return;

        if (fin) {
            fin->st = Run::St::Finalizing;
            lock.unlock();
            try {
                finalizeRun(S, *fin);
            } catch (...) {
                std::lock_guard<std::mutex> g(S.mu);
                S.fail(fin->planIndex, std::current_exception());
            }
            lock.lock();
            continue;
        }

        if (samp) {
            if (samp->ec.isolate) {
                const size_t batch =
                    std::max<size_t>(1, samp->ec.sandbox.batch);
                const size_t t0 = samp->cursor;
                const size_t t1 =
                    std::min(samp->todo.size(), t0 + batch);
                samp->cursor = t1;
                samp->outstanding += t1 - t0;
                std::vector<size_t> pending(samp->todo.begin() + t0,
                                            samp->todo.begin() + t1);
                lock.unlock();
                runIsolatedSamples(S, *samp, std::move(pending));
            } else {
                const size_t i = samp->todo[samp->cursor++];
                ++samp->outstanding;
                auto &ctx = ctxs[samp];
                lock.unlock();
                try {
                    if (!ctx)
                        ctx = samp->ce.driver->makeCtx();
                    runOneSample(S, *samp, i, *ctx);
                } catch (...) {
                    // A non-SimError escaping an injection is an
                    // internal invariant violation: fail the suite
                    // loudly, like the in-process serial path.
                    std::lock_guard<std::mutex> g(S.mu);
                    --samp->outstanding;
                    S.fail(samp->planIndex, std::current_exception());
                }
            }
            lock.lock();
            if (samp->cursor >= samp->todo.size())
                ctxs.erase(samp); // no more claims from this campaign
            continue;
        }

        if (prep) {
            prep->st = Run::St::Preparing;
            lock.unlock();
            try {
                prepareRun(S, *prep);
            } catch (const GoldenRunError &e) {
                // Contained: a failed golden run poisons only this
                // campaign's plan entries; everything else proceeds.
                std::lock_guard<std::mutex> g(S.mu);
                warn("suite: campaign %s failed: %s (continuing with "
                     "the rest of the plan)",
                     prep->spec.label().c_str(), e.what());
                prep->st = Run::St::Failed;
                prep->error = e.what();
                S.samplesTotal -= prep->n;
                ++S.campaignsDone;
                S.reportProgress();
                S.cv.notify_all();
            } catch (...) {
                std::lock_guard<std::mutex> g(S.mu);
                S.fail(prep->planIndex, std::current_exception());
            }
            lock.lock();
            continue;
        }

        // Nothing claimable: outstanding work is in flight elsewhere.
        // The timeout doubles as a shutdown-signal poll.
        S.cv.wait_for(lock, std::chrono::milliseconds(50));
    }
}

SuiteReport
runSerialSuite(VulnerabilityStack &stack, const CampaignPlan &plan,
               const SuiteOptions &opts)
{
    const EnvConfig &cfg = stack.config();
    stack.setCancel(opts.cancel);
    SuiteReport report;
    report.outcomes.reserve(plan.size());
    for (const CampaignSpec &spec : plan.specs()) {
        CampaignOutcome o;
        o.spec = spec;
        report.outcomes.push_back(std::move(o));
    }

    const auto drained = [&opts] {
        return exec::shutdownRequested() ||
               exec::cancelRequested(opts.cancel);
    };
    for (size_t idx = 0; idx < plan.size(); ++idx) {
        if (drained()) {
            report.interrupted = true;
            break;
        }
        CampaignOutcome &o = report.outcomes[idx];
        o.cacheHit =
            stack.resultStore().get(campaignKey(cfg, o.spec)).has_value();
        try {
            switch (o.spec.layer) {
              case CampaignLayer::Uarch:
                o.uarch = stack.uarch(o.spec.core, o.spec.variant,
                                      o.spec.structure);
                break;
              case CampaignLayer::Pvf:
                o.counts =
                    stack.pvf(o.spec.isa, o.spec.variant, o.spec.fpm);
                break;
              case CampaignLayer::Svf:
                o.counts = stack.svf(o.spec.variant);
                break;
            }
        } catch (const GoldenRunError &e) {
            warn("suite: campaign %s failed: %s (continuing with the "
                 "rest of the plan)",
                 o.spec.label().c_str(), e.what());
            o.error = e.what();
            ++report.failures;
            continue;
        }
        if (drained()) {
            // The campaign drained early; its aggregate is partial.
            report.interrupted = true;
            break;
        }
        o.complete = true;
        if (o.cacheHit)
            ++report.cacheHits;
        if (opts.progress) {
            SuiteProgress p;
            p.campaignsDone = idx + 1;
            p.campaignsTotal = plan.size();
            p.storageFaults = stack.storageFaults();
            p.goldenEvictions = stack.goldenEvictions();
            opts.progress(p);
        }
    }
    stack.setCancel(nullptr);
    report.storageFaults = stack.storageFaults();
    report.goldenEvictions = stack.goldenEvictions();
    return report;
}

} // namespace

SuiteReport
runSuite(VulnerabilityStack &stack, const CampaignPlan &plan,
         const SuiteOptions &opts)
{
    if (opts.serial)
        return runSerialSuite(stack, plan, opts);

    Sched S(stack, opts);

    // Deduplicate the plan by store key (first occurrence wins) and
    // short-circuit campaigns the store already has — cache hits never
    // consume pool time.
    std::map<std::string, Run *> byKey;
    for (size_t idx = 0; idx < plan.size(); ++idx) {
        const CampaignSpec &spec = plan.specs()[idx];
        const std::string key = campaignKey(S.cfg, spec);
        auto it = byKey.find(key);
        if (it != byKey.end()) {
            S.bySpec.push_back(it->second);
            continue;
        }
        auto run = std::make_unique<Run>();
        run->spec = spec;
        run->planIndex = idx;
        run->key = key;
        run->n = campaignSamples(S.cfg, spec);
        if (auto cached = stack.resultStore().get(key)) {
            run->cacheHit = true;
            run->st = Run::St::Done;
            run->resultJson = std::move(*cached);
            ++S.campaignsDone;
        } else {
            S.samplesTotal += run->n;
        }
        byKey.emplace(key, run.get());
        S.bySpec.push_back(run.get());
        S.runs.push_back(std::move(run));
    }

    const bool allCached = S.campaignsDone == S.runs.size();
    if (!allCached) {
        exec::runOnWorkers(exec::resolveJobs(S.cfg.jobs),
                           [&S](unsigned id) { workerLoop(S, id); });
    }

    if (S.error)
        std::rethrow_exception(S.error);

    SuiteReport report;
    report.outcomes.reserve(plan.size());
    for (size_t idx = 0; idx < plan.size(); ++idx) {
        Run *r = S.bySpec[idx];
        CampaignOutcome o;
        o.spec = plan.specs()[idx];
        o.cacheHit = r->cacheHit;
        if (r->st == Run::St::Done) {
            o.complete = true;
            decodeCampaignOutcome(o, r->resultJson);
            if (o.cacheHit)
                ++report.cacheHits;
        } else if (r->st == Run::St::Failed) {
            o.error = r->error;
            ++report.failures;
        } else {
            report.interrupted = true;
        }
        report.outcomes.push_back(std::move(o));
    }
    if (exec::shutdownRequested() || exec::cancelRequested(opts.cancel))
        report.interrupted = true;
    report.storageFaults = stack.storageFaults();
    report.goldenEvictions = stack.goldenEvictions();
    return report;
}

namespace
{

/** Expand a manifest entry's "workload" axis ("*" = the paper's ten
 *  benchmarks, in paper order) without exiting on unknown names. */
bool
manifestWorkloads(const Json &e, std::vector<std::string> &names,
                  std::string &err)
{
    if (!e.has("workload")) {
        err = "suite manifest: every campaign needs a \"workload\"";
        return false;
    }
    const std::string w = e.at("workload").asString();
    if (w == "*") {
        for (const Workload &wl : paperWorkloads())
            names.push_back(wl.name);
        return true;
    }
    for (const Workload &wl : allWorkloads()) {
        if (wl.name == w) {
            names.push_back(w);
            return true;
        }
    }
    err = "suite manifest: unknown workload '" + w + "'";
    return false;
}

/** Append one manifest campaign entry (wildcards expanded) to the
 *  plan; false + err on malformed entries or unknown names. */
bool
addManifestEntry(CampaignPlan &plan, const Json &e, bool hardenAll,
                 std::string &err)
{
    if (!e.isObject() || !e.has("layer")) {
        err = "suite manifest: campaigns must be objects with a "
              "\"layer\"";
        return false;
    }
    const std::string layer = e.at("layer").asString();
    const bool harden =
        hardenAll || (e.has("harden") && e.at("harden").asBool());
    // Validate the entry's fault model up front so a daemon admitting
    // this manifest rejects it before anything is enqueued; the
    // canonical tag is stamped onto every spec the entry fans out to.
    std::string faultModel;
    if (e.has("faultModel")) {
        std::string ferr;
        auto m =
            fault::parseFaultModel(e.at("faultModel").asString(), ferr);
        if (!m) {
            err = "suite manifest: " + ferr;
            return false;
        }
        faultModel = m->tag();
    }
    const size_t firstSpec = plan.size();
    std::vector<std::string> workloads;
    if (!manifestWorkloads(e, workloads, err))
        return false;
    for (const std::string &w : workloads) {
        const Variant v{w, harden};
        if (layer == "uarch") {
            const std::string core =
                e.has("core") ? e.at("core").asString() : "ax72";
            bool known = false;
            for (const CoreConfig &c : allCores())
                known = known || c.name == core;
            if (!known) {
                err = "suite manifest: unknown core '" + core + "'";
                return false;
            }
            const std::string s =
                e.has("structure") ? e.at("structure").asString() : "*";
            Structure st = Structure::RF;
            if (s == "*") {
                plan.addUarchAll(core, v);
            } else if (structureFromName(s, st)) {
                plan.addUarch(core, v, st);
            } else {
                err = "suite manifest: unknown structure '" + s + "'";
                return false;
            }
        } else if (layer == "pvf") {
            const std::string in =
                e.has("isa") ? e.at("isa").asString() : "av64";
            IsaId isa = IsaId::Av64;
            if (in == isaName(IsaId::Av32)) {
                isa = IsaId::Av32;
            } else if (in != isaName(IsaId::Av64)) {
                err = "suite manifest: unknown isa '" + in + "'";
                return false;
            }
            const std::string f =
                e.has("fpm") ? e.at("fpm").asString() : "WD";
            Fpm fpm = Fpm::WD;
            if (f == "*") {
                // ESC is excluded: escaped faults never re-enter the
                // program flow, so arch-level injection cannot model
                // them (paper Table I).
                plan.addPvf(isa, v, Fpm::WD);
                plan.addPvf(isa, v, Fpm::WI);
                plan.addPvf(isa, v, Fpm::WOI);
            } else if (fpmFromName(f.c_str(), fpm)) {
                plan.addPvf(isa, v, fpm);
            } else {
                err = "suite manifest: unknown fpm '" + f + "'";
                return false;
            }
        } else if (layer == "svf") {
            plan.addSvf(v);
        } else {
            err = "suite manifest: unknown layer '" + layer +
                  "' (expected uarch, pvf, or svf)";
            return false;
        }
    }
    if (!faultModel.empty())
        plan.applyFaultModel(firstSpec, faultModel);
    return true;
}

} // namespace

bool
planFromManifest(const Json &manifest, bool hardenAll,
                 CampaignPlan &plan, std::string &err)
{
    if (!manifest.isObject() || !manifest.has("campaigns") ||
        !manifest.at("campaigns").isArray()) {
        err = "suite manifest: top level must be an object with a "
              "\"campaigns\" array";
        return false;
    }
    for (const Json &e : manifest.at("campaigns").items()) {
        if (!addManifestEntry(plan, e, hardenAll, err))
            return false;
    }
    if (plan.size() == 0) {
        err = "suite manifest: no campaigns";
        return false;
    }
    return true;
}

} // namespace vstack
