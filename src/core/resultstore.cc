#include "resultstore.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "support/crc32c.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace vstack
{

namespace
{

/** Envelope format version (bare pre-envelope JSON reads as legacy). */
constexpr int64_t FORMAT = 2;

} // namespace

ResultStore::ResultStore(std::string dir) : dir(std::move(dir))
{
    if (!this->dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(this->dir, ec);
        if (ec) {
            warn("cannot create result cache '%s': %s; caching disabled",
                 this->dir.c_str(), ec.message().c_str());
            this->dir.clear();
        }
    }
}

std::string
ResultStore::pathFor(const std::string &key) const
{
    std::string name;
    name.reserve(key.size());
    for (char c : key) {
        name += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.')
                    ? c
                    : '_';
    }
    return dir + "/" + name + ".json";
}

std::optional<Json>
ResultStore::quarantine(const std::string &key, const char *why) const
{
    const std::string path = pathFor(key);
    const std::string sidecar = path + ".corrupt";
    std::error_code ec;
    std::filesystem::rename(path, sidecar, ec);
    faults.fetch_add(1, std::memory_order_relaxed);
    warn("corrupt cache entry '%s' (%s): quarantined to '%s'; "
         "recomputing",
         key.c_str(), why, ec ? path.c_str() : sidecar.c_str());
    return std::nullopt;
}

std::optional<Json>
ResultStore::get(const std::string &key) const
{
    if (dir.empty())
        return std::nullopt;
    std::string text;
    if (!readFile(pathFor(key), text))
        return std::nullopt;
    std::string err;
    Json j = Json::parse(text, &err);
    if (!err.empty())
        return quarantine(key, err.c_str());
    if (j.isObject() && j.has("fmt")) {
        if (j.at("fmt").asInt() != FORMAT || !j.has("crc") ||
            !j.has("data"))
            return quarantine(key, "malformed envelope");
        if (crc32cHex(crc32c(j.at("data").dump())) !=
            j.at("crc").asString())
            return quarantine(key, "checksum mismatch");
        return j.at("data");
    }
    // Bare JSON: a legacy pre-envelope entry (accepted unverified for
    // cache continuity; rewritten with a checksum on the next put).
    return j;
}

void
ResultStore::put(const std::string &key, const Json &value) const
{
    if (dir.empty())
        return;
    Json env = Json::object();
    env.set("fmt", FORMAT);
    env.set("crc", crc32cHex(crc32c(value.dump())));
    env.set("data", value);
    const std::string content = env.dump(2);
    const std::string path = pathFor(key);

    // Atomic + durable by hand (not support's writeFile): the cache is
    // the long-lived artifact campaigns trust, so the temp file is
    // fsynced before the rename and the directory after it — and the
    // sequence carries the chaos failpoints.
    static std::atomic<unsigned> counter{0};
    const std::string tmp =
        path + ".tmp." +
        std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
    bool ok = false;
    if (std::FILE *f = std::fopen(tmp.c_str(), "wb")) {
        // A short write is what ENOSPC mid-entry looks like: bytes up
        // to the full size never make it, and put() must fail cleanly.
        size_t want = content.size();
        if (failpoint("store.write.enospc"))
            want /= 2;
        ok = std::fwrite(content.data(), 1, want, f) == want &&
             want == content.size();
        std::fflush(f);
        ::fsync(::fileno(f));
        std::fclose(f);
    }
    failpointKill("store.rename.kill");
    if (ok && failpoint("store.rename.enospc"))
        ok = false;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        warn("failed to write cache entry '%s'", key.c_str());
        return;
    }
    fsyncDir(dir);
}

} // namespace vstack
