#include "resultstore.h"

#include <filesystem>

#include "support/logging.h"

namespace vstack
{

ResultStore::ResultStore(std::string dir) : dir(std::move(dir))
{
    if (!this->dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(this->dir, ec);
        if (ec) {
            warn("cannot create result cache '%s': %s; caching disabled",
                 this->dir.c_str(), ec.message().c_str());
            this->dir.clear();
        }
    }
}

std::string
ResultStore::pathFor(const std::string &key) const
{
    std::string name;
    name.reserve(key.size());
    for (char c : key) {
        name += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.')
                    ? c
                    : '_';
    }
    return dir + "/" + name + ".json";
}

std::optional<Json>
ResultStore::get(const std::string &key) const
{
    if (dir.empty())
        return std::nullopt;
    std::string text;
    if (!readFile(pathFor(key), text))
        return std::nullopt;
    std::string err;
    Json j = Json::parse(text, &err);
    if (!err.empty()) {
        warn("corrupt cache entry '%s': %s", key.c_str(), err.c_str());
        return std::nullopt;
    }
    return j;
}

void
ResultStore::put(const std::string &key, const Json &value) const
{
    if (dir.empty())
        return;
    if (!writeFile(pathFor(key), value.dump(2)))
        warn("failed to write cache entry '%s'", key.c_str());
}

} // namespace vstack
