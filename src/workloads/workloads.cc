#include "workloads.h"

#include "support/logging.h"

namespace vstack
{

namespace workload_sources
{
std::string qsortSource();
std::string dijkstraSource();
std::string shaSource();
std::string rijndaelSource();
std::string fftSource();
std::string crc32Source();
std::string searchSource();
std::string cornerSource();
std::string smoothSource();
std::string cjpegSource();
std::string djpegSource();
} // namespace workload_sources

const std::vector<Workload> &
paperWorkloads()
{
    using namespace workload_sources;
    static const std::vector<Workload> suite = {
        {"fft", "dsp", fftSource()},
        {"qsort", "sort", qsortSource()},
        {"sha", "crypto", shaSource()},
        {"rijndael", "crypto", rijndaelSource()},
        {"dijkstra", "graph", dijkstraSource()},
        {"search", "string", searchSource()},
        {"corner", "image", cornerSource()},
        {"smooth", "image", smoothSource()},
        {"cjpeg", "codec", cjpegSource()},
        {"djpeg", "codec", djpegSource()},
    };
    return suite;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> all = paperWorkloads();
        all.push_back({"crc32", "telecom",
                       workload_sources::crc32Source()});
        return all;
    }();
    return suite;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace vstack
