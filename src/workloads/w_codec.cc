/**
 * @file
 * Codec workloads: cjpeg (forward DCT + quantise + RLE) and djpeg
 * (decode + inverse DCT) — JPEG-pipeline analogs of MiBench's
 * cjpeg/djpeg.
 */
#include "workloads.h"

namespace vstack::workload_sources
{

namespace
{

/** Shared integer-DCT helpers used by both codec workloads. */
const char *codecCommon = R"MCL(
// 8x8 integer DCT basis in Q10: bas[u][x] = round(1024 * c(u)/2 *
// cos((2x+1)u*pi/16)), with c(0)=1/sqrt(2).
const dctbas: int[64] = {
   362,  362,  362,  362,  362,  362,  362,  362,
   502,  426,  284,  100, -100, -284, -426, -502,
   473,  196, -196, -473, -473, -196,  196,  473,
   426, -100, -502, -284,  284,  502,  100, -426,
   362, -362, -362,  362,  362, -362, -362,  362,
   284, -502,  100,  426, -426, -100,  502, -284,
   196, -473,  473, -196, -196,  473, -473,  196,
   100, -284,  426, -502,  502, -426,  284, -100 };

const quant: int[64] = {
   16, 11, 10, 16, 24, 40, 51, 61,
   12, 12, 14, 19, 26, 58, 60, 55,
   14, 13, 16, 24, 40, 57, 69, 56,
   14, 17, 22, 29, 51, 87, 80, 62,
   18, 22, 37, 56, 68,109,103, 77,
   24, 35, 55, 64, 81,104,113, 92,
   49, 64, 78, 87,103,121,120,101,
   72, 92, 95, 98,112,100,103, 99 };

const zigzag: int[64] = {
    0,  1,  8, 16,  9,  2,  3, 10,
   17, 24, 32, 25, 18, 11,  4,  5,
   12, 19, 26, 33, 40, 48, 41, 34,
   27, 20, 13,  6,  7, 14, 21, 28,
   35, 42, 49, 56, 57, 50, 43, 36,
   29, 22, 15, 23, 30, 37, 44, 51,
   58, 59, 52, 45, 38, 31, 39, 46,
   53, 60, 61, 54, 47, 55, 62, 63 };

var block: int[64];
var coef: int[64];

// forward DCT: coef = B * block * B^T (Q10 basis, rescaled)
fn fdct() {
    var tmp: int[64];
    var u: int = 0;
    while (u < 8) {
        var x: int = 0;
        while (x < 8) {
            var acc: int = 0;
            var k: int = 0;
            while (k < 8) {
                acc = acc + dctbas[u * 8 + k] * block[k * 8 + x];
                k = k + 1;
            }
            tmp[u * 8 + x] = acc >> 10;
            x = x + 1;
        }
        u = u + 1;
    }
    u = 0;
    while (u < 8) {
        var v: int = 0;
        while (v < 8) {
            var acc: int = 0;
            var k: int = 0;
            while (k < 8) {
                acc = acc + tmp[u * 8 + k] * dctbas[v * 8 + k];
                k = k + 1;
            }
            coef[u * 8 + v] = acc >> 10;
            v = v + 1;
        }
        u = u + 1;
    }
}

// inverse DCT: block = B^T * coef * B
fn idct() {
    var tmp: int[64];
    var x: int = 0;
    while (x < 8) {
        var v: int = 0;
        while (v < 8) {
            var acc: int = 0;
            var k: int = 0;
            while (k < 8) {
                acc = acc + dctbas[k * 8 + x] * coef[k * 8 + v];
                k = k + 1;
            }
            tmp[x * 8 + v] = acc >> 10;
            v = v + 1;
        }
        x = x + 1;
    }
    x = 0;
    while (x < 8) {
        var y: int = 0;
        while (y < 8) {
            var acc: int = 0;
            var k: int = 0;
            while (k < 8) {
                acc = acc + tmp[x * 8 + k] * dctbas[k * 8 + y];
                k = k + 1;
            }
            block[x * 8 + y] = acc >> 10;
            y = y + 1;
        }
        x = x + 1;
    }
}
)MCL";

} // namespace

std::string
cjpegSource()
{
    return std::string(codecCommon) + R"MCL(
// cjpeg: compress a 16x16 synthetic image: per 8x8 block, forward
// DCT, quantise, zigzag, run-length encode, emit the byte stream.

var img: byte[64];     // 8 x 8
var stream: byte[256];
var slen: int;
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn build_image() {
    var y: int = 0;
    while (y < 8) {
        var x: int = 0;
        while (x < 8) {
            var v: int = 128 + ((x - 4) * (y - 4)) * 2;
            v = v + next_rand() % 17 - 8;
            if (v < 0) { v = 0; }
            if (v > 255) { v = 255; }
            img[y * 8 + x] = v;
            x = x + 1;
        }
        y = y + 1;
    }
}

fn emit(b: int) {
    stream[slen] = b;
    slen = slen + 1;
}

fn encode_block(bx: int, by: int) {
    var y: int = 0;
    while (y < 8) {
        var x: int = 0;
        while (x < 8) {
            block[y * 8 + x] = img[(by * 8 + y) * 8 + bx * 8 + x] - 128;
            x = x + 1;
        }
        y = y + 1;
    }
    fdct();
    // quantise + zigzag + RLE(zero runs)
    var run: int = 0;
    var i: int = 0;
    while (i < 64) {
        var q: int = coef[zigzag[i]] / quant[zigzag[i]];
        if (q == 0) {
            run = run + 1;
        } else {
            while (run > 15) { emit(0xf0); run = run - 16; }
            // nibble-packed run + signed value byte
            emit((run << 4) | (q & 15) ^ 0);
            emit((q + 128) & 0xff);
            run = 0;
        }
        i = i + 1;
    }
    emit(0x00);   // end of block
}

fn main(): int {
    seed = 12321;
    slen = 0;
    build_image();
    encode_block(0, 0);
    // coefficient plane (what a real cjpeg would entropy-code)
    write_words32(&coef[0], 64);
    write(&stream[0], slen);
    print_str("bytes ");
    print_int(slen);
    print_nl();
    return 0;
}
)MCL";
}

std::string
djpegSource()
{
    return std::string(codecCommon) + R"MCL(
// djpeg: decode a fixed compressed stream (produced by the cjpeg
// analog) back into pixels via dequantise + inverse DCT.

const stream: byte[] = {
  0x11,0x92, 0x12,0x85, 0x21,0x7e, 0x01,0x83, 0x13,0x7a, 0x31,0x81,
  0x02,0x7f, 0x22,0x84, 0x00,
  0x12,0x9a, 0x11,0x7c, 0x03,0x82, 0x21,0x86, 0x41,0x7d, 0x00,
  0x13,0x8e, 0x01,0x7b, 0x12,0x88, 0x32,0x7f, 0x00,
  0x11,0x90, 0x22,0x81, 0x02,0x7d, 0x11,0x85, 0x51,0x80, 0x00 };

var out: byte[64];
var nblocks: int;

fn decode_block(pos: int, obase: int): int {
    var i: int = 0;
    while (i < 64) { coef[i] = 0; i = i + 1; }
    var zi: int = 0;
    while (zi < 64) {
        var b: int = stream[pos];
        pos = pos + 1;
        if (b == 0) { break; }
        var run: int = __lshr(b, 4) & 15;
        var mag: int = b & 15;
        zi = zi + run;
        if (zi >= 64) { break; }
        var val: int = stream[pos] - 128;
        pos = pos + 1;
        if (mag == 0) { mag = 1; }
        coef[zigzag[zi]] = val * quant[zigzag[zi]];
        zi = zi + 1;
    }
    idct();
    i = 0;
    while (i < 64) {
        var v: int = block[i] + 128;
        if (v < 0) { v = 0; }
        if (v > 255) { v = 255; }
        out[obase + i] = v;
        i = i + 1;
    }
    return pos;
}

fn main(): int {
    var pos: int = 0;
    nblocks = 0;
    var slen: int = 48;
    while (pos < slen) {
        if (nblocks >= 1) { break; }
        pos = decode_block(pos, nblocks * 64);
        nblocks = nblocks + 1;
    }
    write_words32(&block[0], 64);   // raw idct plane
    write(&out[0], 64);
    var sum: int = 0;
    var i: int = 0;
    while (i < 64) { sum = (sum * 131 + out[i]) & 0xffffffff; i = i + 1; }
    print_str("blocks ");
    print_int(nblocks);
    print_nl();
    print_str("checksum ");
    print_hex(sum, 8);
    print_nl();
    return 0;
}
)MCL";
}

} // namespace vstack::workload_sources
