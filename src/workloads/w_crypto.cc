/**
 * @file
 * Crypto workloads: sha (SHA-1) and rijndael (AES-128 encryption),
 * MiBench analogs.  All arithmetic is explicitly masked to 32 bits so
 * results match across av32/av64.
 */
#include "workloads.h"

namespace vstack::workload_sources
{

std::string
shaSource()
{
    return R"MCL(
// sha: SHA-1 over a 256-byte pseudo-random message, one compression
// per 64-byte block, printing the running digest after every block
// (MiBench sha analog).

var msg: byte[64];
var h0: int; var h1: int; var h2: int; var h3: int; var h4: int;
var w: int[80];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn rotl(x: int, n: int): int {
    x = x & 0xffffffff;
    return ((x << n) | __lshr(x, 32 - n)) & 0xffffffff;
}

fn sha1_block(off: int) {
    var i: int = 0;
    while (i < 16) {
        var b: int = off + i * 4;
        w[i] = ((msg[b] << 24) | (msg[b + 1] << 16) | (msg[b + 2] << 8)
                | msg[b + 3]) & 0xffffffff;
        i = i + 1;
    }
    while (i < 80) {
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
        i = i + 1;
    }
    var a: int = h0; var b2: int = h1; var c: int = h2;
    var d: int = h3; var e: int = h4;
    i = 0;
    while (i < 80) {
        var f: int = 0;
        var k: int = 0;
        if (i < 20) {
            f = (b2 & c) | ((~b2) & d);
            k = 0x5a827999;
        } else { if (i < 40) {
            f = b2 ^ c ^ d;
            k = 0x6ed9eba1;
        } else { if (i < 60) {
            f = (b2 & c) | (b2 & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            f = b2 ^ c ^ d;
            k = 0xca62c1d6;
        } } }
        var tmp: int = (rotl(a, 5) + f + e + k + w[i]) & 0xffffffff;
        e = d;
        d = c;
        c = rotl(b2, 30);
        b2 = a;
        a = tmp;
        i = i + 1;
    }
    h0 = (h0 + a) & 0xffffffff;
    h1 = (h1 + b2) & 0xffffffff;
    h2 = (h2 + c) & 0xffffffff;
    h3 = (h3 + d) & 0xffffffff;
    h4 = (h4 + e) & 0xffffffff;
}

fn print_digest() {
    print_hex(h0, 8); print_hex(h1, 8); print_hex(h2, 8);
    print_hex(h3, 8); print_hex(h4, 8); print_nl();
}

fn main(): int {
    seed = 20210614;
    var i: int = 0;
    while (i < 64) { msg[i] = next_rand(); i = i + 1; }
    h0 = 0x67452301; h1 = 0xefcdab89; h2 = 0x98badcfe;
    h3 = 0x10325476; h4 = 0xc3d2e1f0;
    var blk: int = 0;
    while (blk < 1) {
        sha1_block(blk * 64);
        print_digest();
        blk = blk + 1;
    }
    return 0;
}
)MCL";
}

std::string
rijndaelSource()
{
    return R"MCL(
// rijndael: AES-128 ECB encryption of 64 bytes (4 blocks) with a full
// key schedule and table-based S-box (MiBench rijndael analog).

const sbox: byte[256] = {
  0x63,0x7c,0x77,0x7b,0xf2,0x6b,0x6f,0xc5,0x30,0x01,0x67,0x2b,0xfe,0xd7,0xab,0x76,
  0xca,0x82,0xc9,0x7d,0xfa,0x59,0x47,0xf0,0xad,0xd4,0xa2,0xaf,0x9c,0xa4,0x72,0xc0,
  0xb7,0xfd,0x93,0x26,0x36,0x3f,0xf7,0xcc,0x34,0xa5,0xe5,0xf1,0x71,0xd8,0x31,0x15,
  0x04,0xc7,0x23,0xc3,0x18,0x96,0x05,0x9a,0x07,0x12,0x80,0xe2,0xeb,0x27,0xb2,0x75,
  0x09,0x83,0x2c,0x1a,0x1b,0x6e,0x5a,0xa0,0x52,0x3b,0xd6,0xb3,0x29,0xe3,0x2f,0x84,
  0x53,0xd1,0x00,0xed,0x20,0xfc,0xb1,0x5b,0x6a,0xcb,0xbe,0x39,0x4a,0x4c,0x58,0xcf,
  0xd0,0xef,0xaa,0xfb,0x43,0x4d,0x33,0x85,0x45,0xf9,0x02,0x7f,0x50,0x3c,0x9f,0xa8,
  0x51,0xa3,0x40,0x8f,0x92,0x9d,0x38,0xf5,0xbc,0xb6,0xda,0x21,0x10,0xff,0xf3,0xd2,
  0xcd,0x0c,0x13,0xec,0x5f,0x97,0x44,0x17,0xc4,0xa7,0x7e,0x3d,0x64,0x5d,0x19,0x73,
  0x60,0x81,0x4f,0xdc,0x22,0x2a,0x90,0x88,0x46,0xee,0xb8,0x14,0xde,0x5e,0x0b,0xdb,
  0xe0,0x32,0x3a,0x0a,0x49,0x06,0x24,0x5c,0xc2,0xd3,0xac,0x62,0x91,0x95,0xe4,0x79,
  0xe7,0xc8,0x37,0x6d,0x8d,0xd5,0x4e,0xa9,0x6c,0x56,0xf4,0xea,0x65,0x7a,0xae,0x08,
  0xba,0x78,0x25,0x2e,0x1c,0xa6,0xb4,0xc6,0xe8,0xdd,0x74,0x1f,0x4b,0xbd,0x8b,0x8a,
  0x70,0x3e,0xb5,0x66,0x48,0x03,0xf6,0x0e,0x61,0x35,0x57,0xb9,0x86,0xc1,0x1d,0x9e,
  0xe1,0xf8,0x98,0x11,0x69,0xd9,0x8e,0x94,0x9b,0x1e,0x87,0xe9,0xce,0x55,0x28,0xdf,
  0x8c,0xa1,0x89,0x0d,0xbf,0xe6,0x42,0x68,0x41,0x99,0x2d,0x0f,0xb0,0x54,0xbb,0x16 };

const rcon: byte[11] = { 0x8d,0x01,0x02,0x04,0x08,0x10,0x20,0x40,0x80,0x1b,0x36 };

var rk: byte[176];     // round keys
var state: byte[16];
var buf: byte[16];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn xtime(x: int): int {
    x = x << 1;
    if ((x & 0x100) != 0) { x = x ^ 0x11b; }
    return x & 0xff;
}

fn key_expand(key: byte*) {
    var i: int = 0;
    while (i < 16) { rk[i] = key[i]; i = i + 1; }
    i = 16;
    var rci: int = 1;
    while (i < 176) {
        var t0: int = rk[i - 4]; var t1: int = rk[i - 3];
        var t2: int = rk[i - 2]; var t3: int = rk[i - 1];
        if ((i % 16) == 0) {
            var tmp: int = t0;
            t0 = sbox[t1] ^ rcon[rci];
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
            rci = rci + 1;
        }
        rk[i] = rk[i - 16] ^ t0;
        rk[i + 1] = rk[i - 15] ^ t1;
        rk[i + 2] = rk[i - 14] ^ t2;
        rk[i + 3] = rk[i - 13] ^ t3;
        i = i + 4;
    }
}

fn add_round_key(round: int) {
    var i: int = 0;
    while (i < 16) {
        state[i] = state[i] ^ rk[round * 16 + i];
        i = i + 1;
    }
}

fn sub_shift() {
    // SubBytes + ShiftRows combined.
    var tmp: byte[16];
    var i: int = 0;
    while (i < 16) { tmp[i] = sbox[state[i]]; i = i + 1; }
    // column-major state: s[r + 4c]
    var c: int = 0;
    while (c < 4) {
        var r: int = 0;
        while (r < 4) {
            state[r + 4 * c] = tmp[r + 4 * ((c + r) % 4)];
            r = r + 1;
        }
        c = c + 1;
    }
}

fn mix_columns() {
    var c: int = 0;
    while (c < 4) {
        var a0: int = state[4 * c];     var a1: int = state[4 * c + 1];
        var a2: int = state[4 * c + 2]; var a3: int = state[4 * c + 3];
        state[4 * c]     = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[4 * c + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[4 * c + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        c = c + 1;
    }
}

fn encrypt_block(off: int) {
    var i: int = 0;
    while (i < 16) { state[i] = buf[off + i]; i = i + 1; }
    add_round_key(0);
    var round: int = 1;
    while (round < 10) {
        sub_shift();
        mix_columns();
        add_round_key(round);
        round = round + 1;
    }
    sub_shift();
    add_round_key(10);
    i = 0;
    while (i < 16) { buf[off + i] = state[i]; i = i + 1; }
}

fn main(): int {
    var key: byte[16];
    var i: int = 0;
    seed = 99991;
    while (i < 16) { key[i] = next_rand(); i = i + 1; }
    i = 0;
    while (i < 16) { buf[i] = next_rand(); i = i + 1; }
    key_expand(&key[0]);
    var blk: int = 0;
    while (blk < 1) {
        encrypt_block(blk * 16);
        blk = blk + 1;
    }
    i = 0;
    while (i < 16) {
        print_hex(buf[i], 2);
        if ((i % 16) == 15) { print_nl(); }
        i = i + 1;
    }
    return 0;
}
)MCL";
}

} // namespace vstack::workload_sources
