/**
 * @file
 * Sorting and graph workloads: qsort (recursive quicksort) and
 * dijkstra (single-source shortest paths), MiBench analogs.
 */
#include "workloads.h"

namespace vstack::workload_sources
{

std::string
qsortSource()
{
    return R"MCL(
// qsort: recursive quicksort over 150 pseudo-random ints (MiBench
// qsort analog).  Prints the sorted array and a checksum.

var data: int[48];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0x7fff;
}

fn quicksort(lo: int, hi: int) {
    if (lo >= hi) { return; }
    var pivot: int = data[(lo + hi) / 2];
    var i: int = lo;
    var j: int = hi;
    while (i <= j) {
        while (data[i] < pivot) { i = i + 1; }
        while (data[j] > pivot) { j = j - 1; }
        if (i <= j) {
            var t: int = data[i];
            data[i] = data[j];
            data[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
}

fn main(): int {
    seed = 4242;
    var i: int = 0;
    while (i < 48) { data[i] = next_rand(); i = i + 1; }
    quicksort(0, 47);

    var sum: int = 0;
    var bad: int = 0;
    i = 0;
    while (i < 48) {
        sum = (sum * 31 + data[i]) & 0xffffffff;
        if (i > 0) {
            if (data[i] < data[i - 1]) { bad = bad + 1; }
        }
        i = i + 1;
    }
    // dump the sorted array (the "output file"), then pretty-print
    write_words32(&data[0], 48);
    i = 0;
    while (i < 48) {
        print_int(data[i]);
        if ((i % 10) == 9) { print_nl(); }
        i = i + 1;
    }
    print_str("checksum ");
    print_hex(sum, 8);
    print_nl();
    return bad;
}
)MCL";
}

std::string
dijkstraSource()
{
    return R"MCL(
// dijkstra: O(V^2) single-source shortest paths on a 24-node dense
// graph with pseudo-random weights (MiBench dijkstra analog).

var adj: int[256];   // 16 x 16
var dist: int[16];
var done: int[16];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0x7fff;
}

fn build_graph() {
    var i: int = 0;
    while (i < 16) {
        var j: int = 0;
        while (j < 16) {
            if (i == j) {
                adj[i * 16 + j] = 0;
            } else {
                var w: int = next_rand() % 97 + 1;
                if (w > 80) { w = 1000000; }  // sparse-ish
                adj[i * 16 + j] = w;
            }
            j = j + 1;
        }
        i = i + 1;
    }
}

fn dijkstra(src: int) {
    var i: int = 0;
    while (i < 16) {
        dist[i] = 1000000000;
        done[i] = 0;
        i = i + 1;
    }
    dist[src] = 0;
    var iter: int = 0;
    while (iter < 16) {
        var best: int = 1000000001;
        var u: int = 0 - 1;
        i = 0;
        while (i < 16) {
            if (done[i] == 0) {
                if (dist[i] < best) { best = dist[i]; u = i; }
            }
            i = i + 1;
        }
        if (u < 0) { return; }
        done[u] = 1;
        i = 0;
        while (i < 16) {
            var alt: int = dist[u] + adj[u * 16 + i];
            if (alt < dist[i]) { dist[i] = alt; }
            i = i + 1;
        }
        iter = iter + 1;
    }
}

fn main(): int {
    seed = 777;
    build_graph();
    var src: int = 0;
    var total: int = 0;
    while (src < 2) {
        dijkstra(src * 7);
        var i: int = 0;
        while (i < 16) {
            print_int(dist[i]);
            total = (total + dist[i]) & 0xffffffff;
            i = i + 1;
        }
        print_nl();
        src = src + 1;
    }
    print_str("total ");
    print_hex(total, 8);
    print_nl();
    return 0;
}
)MCL";
}

} // namespace vstack::workload_sources
