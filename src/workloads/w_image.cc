/**
 * @file
 * Image-processing workloads: corner (SUSAN corner detection analog)
 * and smooth (SUSAN smoothing analog) — the two case-study workloads
 * of the paper's Section VI.
 */
#include "workloads.h"

namespace vstack::workload_sources
{

std::string
cornerSource()
{
    return R"MCL(
// corner: USAN-style corner detection on a 24x24 synthetic image
// (SUSAN corners analog).  For every interior pixel, count
// similar-brightness neighbours in a 5x5 disc; low counts mark
// corners.

var img: byte[144];    // 12 x 12
var resp: byte[144];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn absdiff(a: int, b: int): int {
    if (a > b) { return a - b; }
    return b - a;
}

fn build_image() {
    // blocks of flat intensity plus noise: gives real corners
    var y: int = 0;
    while (y < 12) {
        var x: int = 0;
        while (x < 12) {
            var base: int = 40;
            if (x >= 6) { base = base + 90; }
            if (y >= 6) { base = base + 60; }
            var noise: int = next_rand() % 11;
            img[y * 12 + x] = base + noise;
            x = x + 1;
        }
        y = y + 1;
    }
}

fn usan(x: int, y: int): int {
    var center: int = img[y * 12 + x];
    var count: int = 0;
    var dy: int = 0 - 1;
    while (dy <= 1) {
        var dx: int = 0 - 1;
        while (dx <= 1) {
            var v: int = img[(y + dy) * 12 + (x + dx)];
            var d: int = v - center;
            if (d < 0) { d = 0 - d; }
            if (d <= 20) { count = count + 1; }
            dx = dx + 1;
        }
        dy = dy + 1;
    }
    return count;
}

fn main(): int {
    seed = 1337;
    build_image();
    write(&img[0], 144);    // echo the input frame
    var corners: int = 0;
    var sum: int = 0;
    var y: int = 1;
    while (y < 11) {
        var x: int = 1;
        while (x < 11) {
            var c: int = usan(x, y);
            var r: int = 0;
            if (c < 5) { r = 255; corners = corners + 1; }
            resp[y * 12 + x] = r;
            sum = (sum * 33 + c) & 0xffffffff;
            x = x + 1;
        }
        write(&resp[y * 12], 12);   // stream the finished row
        y = y + 1;
    }
    print_str("corners ");
    print_int(corners);
    print_nl();
    print_str("checksum ");
    print_hex(sum, 8);
    print_nl();
    return 0;
}
)MCL";
}

std::string
smoothSource()
{
    return R"MCL(
// smooth: brightness-weighted 3x3 smoothing of a 20x20 synthetic
// image (SUSAN smoothing analog) — the second case-study workload of
// the paper's Section VI.

var img: byte[100];    // 10 x 10
var out: byte[100];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn absdiff(a: int, b: int): int {
    if (a > b) { return a - b; }
    return b - a;
}

fn build_image() {
    var y: int = 0;
    while (y < 10) {
        var x: int = 0;
        while (x < 10) {
            var v: int = (x * 9 + y * 5) & 0xff;
            v = (v + next_rand() % 31) & 0xff;
            img[y * 10 + x] = v;
            x = x + 1;
        }
        y = y + 1;
    }
}

// weight falls off with brightness difference (SUSAN-style kernel)
fn weight(diff: int): int {
    if (diff <= 8) { return 16; }
    if (diff <= 16) { return 8; }
    if (diff <= 32) { return 4; }
    if (diff <= 64) { return 1; }
    return 0;
}

fn smooth_pixel(x: int, y: int): int {
    var center: int = img[y * 10 + x];
    var num: int = 0;
    var den: int = 0;
    var dy: int = 0 - 1;
    while (dy <= 1) {
        var dx: int = 0 - 1;
        while (dx <= 1) {
            var v: int = img[(y + dy) * 10 + (x + dx)];
            var w: int = weight(absdiff(v, center));
            num = num + v * w;
            den = den + w;
            dx = dx + 1;
        }
        dy = dy + 1;
    }
    if (den == 0) { return center; }
    return num / den;
}

fn main(): int {
    seed = 2718;
    build_image();
    write(&img[0], 100);    // echo the input frame
    var sum: int = 0;
    var y: int = 1;
    while (y < 9) {
        var x: int = 1;
        while (x < 9) {
            var s: int = smooth_pixel(x, y);
            out[y * 10 + x] = s;
            sum = (sum * 31 + s) & 0xffffffff;
            x = x + 1;
        }
        write(&out[y * 10], 10);    // stream the finished row
        y = y + 1;
    }
    print_str("checksum ");
    print_hex(sum, 8);
    print_nl();
    return 0;
}
)MCL";
}

} // namespace vstack::workload_sources
