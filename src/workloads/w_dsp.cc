/**
 * @file
 * DSP and telecom workloads: fft (fixed-point radix-2 FFT), crc32
 * (table-driven CRC-32), and search (Boyer-Moore-Horspool string
 * search) — MiBench analogs.
 */
#include "workloads.h"

namespace vstack::workload_sources
{

std::string
fftSource()
{
    return R"MCL(
// fft: 64-point radix-2 decimation-in-time FFT in Q15 fixed point
// over a pseudo-random signal (MiBench fft analog).  Twiddles come
// from a quarter-wave sine table.

const sintab: int[17] = {
      0,  3212,  6393,  9512, 12539, 15446, 18204, 20787,
  23170, 25329, 27245, 28898, 30273, 31356, 32137, 32609, 32767 };

var re: int[32];
var im: int[32];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0x7fff;
}

// sin(2*pi*k/64) in Q15 for k in [0, 63]
fn qsin(k: int): int {
    k = k & 63;
    if (k <= 16) { return sintab[k]; }
    if (k <= 32) { return sintab[32 - k]; }
    if (k <= 48) { return 0 - sintab[k - 32]; }
    return 0 - sintab[64 - k];
}

fn qcos(k: int): int {
    return qsin(k + 16);
}

fn bitrev(x: int): int {
    var r: int = 0;
    var i: int = 0;
    while (i < 5) {
        r = (r << 1) | (x & 1);
        x = x >> 1;
        i = i + 1;
    }
    return r;
}

fn mulq15(a: int, b: int): int {
    // signed Q15 multiply; operands are within +-32768 so the
    // product fits in 31 bits on both register widths
    return (a * b) >> 15;
}

fn fft32() {
    // bit-reverse reorder
    var i: int = 0;
    while (i < 32) {
        var j: int = bitrev(i);
        if (j > i) {
            var t: int = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
        i = i + 1;
    }
    var len: int = 2;
    while (len <= 32) {
        var half: int = len / 2;
        var step: int = 64 / len;
        var base: int = 0;
        while (base < 32) {
            var k: int = 0;
            while (k < half) {
                var wr: int = qcos(k * step);
                var wi: int = 0 - qsin(k * step);
                var ar: int = re[base + k];
                var ai: int = im[base + k];
                var br: int = re[base + k + half];
                var bi: int = im[base + k + half];
                var tr: int = mulq15(wr, br) - mulq15(wi, bi);
                var ti: int = mulq15(wr, bi) + mulq15(wi, br);
                re[base + k] = (ar + tr) / 2;
                im[base + k] = (ai + ti) / 2;
                re[base + k + half] = (ar - tr) / 2;
                im[base + k + half] = (ai - ti) / 2;
                k = k + 1;
            }
            base = base + len;
        }
        len = len * 2;
    }
}

fn main(): int {
    seed = 31415;
    var i: int = 0;
    while (i < 32) {
        re[i] = next_rand() - 16384;
        im[i] = 0;
        i = i + 1;
    }
    fft32();
    // dump the raw spectrum (the "output file" of the DSP pipeline)
    write_words32(&re[0], 32);
    write_words32(&im[0], 32);
    var sum: int = 0;
    i = 0;
    while (i < 32) {
        var p: int = mulq15(re[i], re[i]) + mulq15(im[i], im[i]);
        sum = (sum + p) & 0xffffffff;
        print_int(p);
        if ((i % 8) == 7) { print_nl(); }
        i = i + 1;
    }
    print_str("power ");
    print_hex(sum, 8);
    print_nl();
    return 0;
}
)MCL";
}

std::string
crc32Source()
{
    return R"MCL(
// crc32: table-driven CRC-32 (IEEE polynomial) over a 2 KiB
// pseudo-random buffer (MiBench CRC32 analog; extra workload).

var table: int[256];
var buf: byte[256];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn build_table() {
    var n: int = 0;
    while (n < 256) {
        var c: int = n;
        var k: int = 0;
        while (k < 8) {
            if ((c & 1) != 0) {
                c = 0xedb88320 ^ __lshr(c & 0xffffffff, 1);
            } else {
                c = __lshr(c & 0xffffffff, 1);
            }
            k = k + 1;
        }
        table[n] = c & 0xffffffff;
        n = n + 1;
    }
}

fn crc_update(crc: int, b: int): int {
    return (table[(crc ^ b) & 0xff] ^ __lshr(crc & 0xffffffff, 8))
           & 0xffffffff;
}

fn main(): int {
    seed = 271828;
    build_table();
    var i: int = 0;
    while (i < 256) { buf[i] = next_rand(); i = i + 1; }
    var crc: int = 0xffffffff;
    i = 0;
    while (i < 256) {
        crc = crc_update(crc, buf[i]);
        if ((i % 64) == 63) {
            print_hex(crc ^ 0xffffffff, 8);
            print_nl();
        }
        i = i + 1;
    }
    print_str("crc ");
    print_hex(crc ^ 0xffffffff, 8);
    print_nl();
    return 0;
}
)MCL";
}

std::string
searchSource()
{
    return R"MCL(
// search: Boyer-Moore-Horspool substring search of several patterns
// over a text corpus (MiBench stringsearch analog).

const text: byte[] = "it was the best of times it was the worst of times it was the age of wisdom it was the age of foolishness it was the epoch of belief it was the epoch of incredulity it was the season of light it was the season of darkness it was the spring of hope it was the winter of despair we had everything before us we had nothing before us we were all going direct to heaven we were all going direct the other way in short the period was so far like the present period that some of its noisiest authorities insisted on its being received for good or for evil in the superlative degree of comparison only";

const pat0: byte[] = "season";
const pat1: byte[] = "epoch of belief";
const pat2: byte[] = "direct";
const pat3: byte[] = "superlative";
const pat4: byte[] = "nowhere";

var shift: int[256];

fn hsearch(pat: byte*, plen: int, tlen: int): int {
    var i: int = 0;
    var count: int = 0;
    while (i < 256) { shift[i] = plen; i = i + 1; }
    i = 0;
    while (i < plen - 1) {
        shift[pat[i]] = plen - 1 - i;
        i = i + 1;
    }
    var pos: int = 0;
    while (pos + plen <= tlen) {
        var j: int = plen - 1;
        while (j >= 0) {
            if (text[pos + j] != pat[j]) { break; }
            j = j - 1;
        }
        if (j < 0) {
            count = count + 1;
            print_int(pos);
            print_nl();
            pos = pos + plen;
        } else {
            pos = pos + shift[text[pos + plen - 1]];
        }
    }
    return count;
}

fn run_one(pat: byte*): int {
    var plen: int = rt_strlen(pat);
    var n: int = hsearch(pat, plen, rt_strlen(text));
    print_str("matches ");
    print_int(n);
    print_nl();
    return n;
}

fn main(): int {
    var total: int = 0;
    total = total + run_one(pat0);
    total = total + run_one(pat2);
    total = total + run_one(pat4);
    print_str("total ");
    print_int(total);
    print_nl();
    return total;
}
)MCL";
}

} // namespace vstack::workload_sources
