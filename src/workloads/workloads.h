/**
 * @file
 * The MiBench-analog workload suite.
 *
 * Ten MCL workloads mirroring the paper's MiBench selection across
 * the same application domains (DSP, sorting, crypto, graph, string
 * processing, image processing, codec), plus crc32 as an extra for
 * examples.  Input sizes are tuned so full microarchitectural
 * injection campaigns complete on a single-core host.
 *
 * All workloads are written width-portably: they produce identical
 * output on av32 and av64 (32-bit arithmetic is masked explicitly),
 * which the cross-ISA tests verify.
 */
#ifndef VSTACK_WORKLOADS_WORKLOADS_H
#define VSTACK_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace vstack
{

/** A workload: name + MCL source (runtime library not included). */
struct Workload
{
    std::string name;
    std::string domain; ///< e.g. "crypto", "dsp"
    std::string source;
};

/** The paper's 10-workload suite (fft, qsort, sha, rijndael, dijkstra,
 *  search, corner, smooth, cjpeg, djpeg). */
const std::vector<Workload> &paperWorkloads();

/** All workloads including extras (crc32). */
const std::vector<Workload> &allWorkloads();

/** Look up a workload by name; fatal() if unknown. */
const Workload &findWorkload(const std::string &name);

} // namespace vstack

#endif // VSTACK_WORKLOADS_WORKLOADS_H
