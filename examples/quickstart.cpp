/**
 * @file
 * Quickstart: compile a guest program, boot it on the cycle-level
 * core, and run a small microarchitectural fault-injection campaign.
 *
 *   $ ./build/examples/quickstart
 *
 * Walks the full pipeline in ~40 lines: MCL source -> compiler ->
 * kernel+user system image -> golden run -> 100 single-bit flips in
 * the physical register file -> AVF.
 */
#include <cstdio>

#include "compiler/compile.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "uarch/config.h"

using namespace vstack;

static const char *program = R"MCL(
// Sum of the first 1000 squares, printed in decimal.
fn main(): int {
    var sum: int = 0;
    var i: int = 1;
    while (i <= 1000) {
        sum = sum + i * i;
        i = i + 1;
    }
    print_str("sum of squares: ");
    print_int(sum);
    print_nl();
    return 0;
}
)MCL";

int
main()
{
    // 1. Compile for the av64 ISA and link against the guest kernel.
    mcl::BuildResult build = mcl::buildUserProgram(program, IsaId::Av64);
    if (!build.ok) {
        std::fprintf(stderr, "compile error: %s\n", build.error.c_str());
        return 1;
    }
    Program system = buildSystemImage(buildKernel(IsaId::Av64),
                                      build.program);

    // 2. Golden run on the ax72 (Cortex-A72 analog) core.
    const CoreConfig &core = coreByName("ax72");
    UarchCampaign campaign(core, system);
    const UarchGolden &golden = campaign.golden();
    std::printf("golden run: %llu cycles, %llu instructions (IPC %.2f), "
                "%zu output bytes\n",
                static_cast<unsigned long long>(golden.cycles),
                static_cast<unsigned long long>(golden.insts),
                static_cast<double>(golden.insts) / golden.cycles,
                golden.dma.size());
    std::printf("program output: %.*s",
                static_cast<int>(golden.dma.size()),
                reinterpret_cast<const char *>(golden.dma.data()));

    // 3. Inject 100 single-bit transient faults into the physical
    //    register file, uniformly over (cycle, bit).
    UarchCampaignResult r = campaign.run(Structure::RF, 100, /*seed=*/1);
    std::printf("\nRF campaign (100 faults): masked=%llu SDC=%llu "
                "crash=%llu -> AVF %.1f%%, HVF %.1f%%\n",
                static_cast<unsigned long long>(r.outcomes.masked),
                static_cast<unsigned long long>(r.outcomes.sdc),
                static_cast<unsigned long long>(r.outcomes.crash),
                r.avf() * 100.0, r.hvf() * 100.0);
    return 0;
}
