/**
 * @file
 * Bringing your own workload: write an MCL program (here: fixed-point
 * matrix multiply with a checksum), compile it for both guest ISAs,
 * and measure its vulnerability at the software and hardware layers.
 *
 *   $ ./build/examples/custom_workload
 *
 * This is the path a user takes to evaluate code that is not part of
 * the bundled MiBench-analog suite.
 */
#include <cstdio>

#include "compiler/compile.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "swfi/svf.h"
#include "uarch/config.h"

using namespace vstack;

static const char *matmulSource = R"MCL(
// 12x12 integer matrix multiply with a pseudo-random input and a
// rolling checksum of the product.

var a: int[144];
var b: int[144];
var c: int[144];
var seed: int;

fn next_rand(): int {
    seed = (seed * 1103515245 + 12345) & 0xffffffff;
    return __lshr(seed, 16) & 0xff;
}

fn main(): int {
    seed = 60606;
    var i: int = 0;
    while (i < 144) {
        a[i] = next_rand();
        b[i] = next_rand();
        i = i + 1;
    }
    var r: int = 0;
    while (r < 12) {
        var col: int = 0;
        while (col < 12) {
            var acc: int = 0;
            var k: int = 0;
            while (k < 12) {
                acc = acc + a[r * 12 + k] * b[k * 12 + col];
                k = k + 1;
            }
            c[r * 12 + col] = acc;
            col = col + 1;
        }
        r = r + 1;
    }
    write_words32(&c[0], 144);
    var sum: int = 0;
    i = 0;
    while (i < 144) { sum = (sum * 31 + c[i]) & 0xffffffff; i = i + 1; }
    print_str("checksum ");
    print_hex(sum, 8);
    print_nl();
    return 0;
}
)MCL";

int
main()
{
    // Software layer (IR-level; the LLFI-analog view).
    mcl::FrontendResult fr = mcl::compileToIr(matmulSource, 64);
    if (!fr.ok) {
        std::fprintf(stderr, "compile error: %s\n", fr.error.c_str());
        return 1;
    }
    SvfCampaign svf(fr.module);
    OutcomeCounts sw = svf.run(300, 5);
    std::printf("SVF (300 faults): masked=%llu SDC=%llu crash=%llu -> "
                "%.1f%% vulnerable\n",
                static_cast<unsigned long long>(sw.masked),
                static_cast<unsigned long long>(sw.sdc),
                static_cast<unsigned long long>(sw.crash),
                sw.vulnerability() * 100.0);

    // Hardware layer, on both ISAs.
    for (const char *coreName : {"ax9", "ax72"}) {
        const CoreConfig &core = coreByName(coreName);
        mcl::BuildResult build =
            mcl::buildUserProgram(matmulSource, core.isa);
        if (!build.ok) {
            std::fprintf(stderr, "%s\n", build.error.c_str());
            return 1;
        }
        UarchCampaign campaign(
            core, buildSystemImage(buildKernel(core.isa), build.program));
        std::printf("\n%s golden: %llu cycles, IPC %.2f\n", coreName,
                    static_cast<unsigned long long>(
                        campaign.golden().cycles),
                    static_cast<double>(campaign.golden().insts) /
                        campaign.golden().cycles);
        for (Structure s : {Structure::RF, Structure::L1D}) {
            UarchCampaignResult r = campaign.run(s, 120, 5);
            std::printf("  %-4s AVF %.1f%%  HVF %.1f%%\n",
                        structureName(s), r.avf() * 100.0,
                        r.hvf() * 100.0);
        }
    }
    return 0;
}
