/**
 * @file
 * Cross-layer vulnerability report for one workload: the paper's
 * core comparison (SVF vs PVF vs AVF, plus the HVF/FPM view) in a
 * single command.
 *
 *   $ ./build/examples/cross_layer_report [workload] [core]
 *
 * Defaults: sha on ax72.  Demonstrates the high-level
 * VulnerabilityStack API that the figure benches are built on.
 */
#include <cstdio>
#include <string>

#include "core/vstack.h"
#include "support/table.h"
#include "workloads/workloads.h"

using namespace vstack;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "sha";
    const std::string core = argc > 2 ? argv[2] : "ax72";
    findWorkload(workload); // validate early (fatal on bad names)
    const CoreConfig &cc = coreByName(core);

    EnvConfig cfg = EnvConfig::fromEnvironment();
    VulnerabilityStack stack(cfg);
    const Variant v{workload, false};

    std::printf("cross-layer vulnerability report: %s on %s "
                "(uarch samples/cell: %zu)\n\n",
                workload.c_str(), core.c_str(), cfg.uarchFaults);

    Table layers("vulnerability by evaluation layer");
    layers.header({"layer", "SDC", "Crash", "total"});
    if (cc.isa == IsaId::Av64) {
        VulnSplit s = stack.svfSplit(v);
        layers.row({"SVF (software / LLFI analog)", Table::pct(s.sdc),
                    Table::pct(s.crash), Table::pct(s.total())});
    }
    VulnSplit p = stack.pvfSplit(cc.isa, v);
    layers.row({"PVF (architecture, WD model)", Table::pct(p.sdc),
                Table::pct(p.crash), Table::pct(p.total())});
    VulnSplit r = stack.rPvf(core, v);
    layers.row({"rPVF (FPM-weighted)", Table::pct(r.sdc),
                Table::pct(r.crash), Table::pct(r.total())});
    VulnSplit a = stack.weightedAvf(core, v);
    layers.row({"AVF (cross-layer ground truth)", Table::pct(a.sdc),
                Table::pct(a.crash), Table::pct(a.total())});
    std::printf("%s\n", layers.render().c_str());

    Table hvf("hardware layer: per-structure AVF/HVF and FPM mix");
    hvf.header({"structure", "AVF", "HVF", "WD", "WI", "WOI", "ESC"});
    for (Structure s : allStructures) {
        UarchCampaignResult res = stack.uarch(core, v, s);
        const double n = static_cast<double>(res.samples);
        hvf.row({structureName(s), Table::pct(res.avf()),
                 Table::pct(res.hvf()),
                 Table::pct(static_cast<double>(res.fpms.wd) / n),
                 Table::pct(static_cast<double>(res.fpms.wi) / n),
                 Table::pct(static_cast<double>(res.fpms.woi) / n),
                 Table::pct(static_cast<double>(res.fpms.esc) / n)});
    }
    std::printf("%s\n", hvf.render().c_str());

    UarchGolden g = stack.uarchGolden(core, v);
    std::printf("golden: %llu cycles, %llu insts, kernel share %.1f%% of "
                "instructions\n",
                static_cast<unsigned long long>(g.cycles),
                static_cast<unsigned long long>(g.insts),
                100.0 * static_cast<double>(g.kernelInsts) / g.insts);
    return 0;
}
