/**
 * @file
 * Software fault tolerance in practice: apply the AN-encoding +
 * instruction-duplication pass to a workload, verify functional
 * equivalence, and measure what the paper measures — the software
 * layer celebrates while the cross-layer AVF tells another story.
 *
 *   $ ./build/examples/harden_and_measure [workload]
 */
#include <cstdio>
#include <string>

#include "compiler/compile.h"
#include "ft/harden.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "swfi/svf.h"
#include "uarch/config.h"
#include "workloads/workloads.h"

using namespace vstack;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "sha";
    const Workload &wl = findWorkload(name);

    mcl::FrontendResult fr = mcl::compileToIr(wl.source, 64);
    if (!fr.ok) {
        std::fprintf(stderr, "%s\n", fr.error.c_str());
        return 1;
    }
    ir::Module hardened = hardenModule(fr.module, defaultHardenOptions());

    // Software layer: SVF with and without protection.
    SvfCampaign plain(fr.module), prot(hardened);
    OutcomeCounts c0 = plain.run(400, 11);
    OutcomeCounts c1 = prot.run(400, 11);
    std::printf("SVF (%s):      SDC %.1f%%  crash %.1f%%\n", name.c_str(),
                c0.sdcRate() * 100, c0.crashRate() * 100);
    std::printf("SVF (%s + FT): SDC %.1f%%  crash %.1f%%  detected "
                "%.1f%%  -> %.1fx vulnerability reduction\n",
                name.c_str(), c1.sdcRate() * 100, c1.crashRate() * 100,
                c1.detectedRate() * 100,
                c1.vulnerability() > 0
                    ? c0.vulnerability() / c1.vulnerability()
                    : 0.0);

    // Hardware layer: cross-layer AVF of both binaries on ax72.
    const CoreConfig &core = coreByName("ax72");
    const Program kernel = buildKernel(core.isa);
    double avf[2] = {0, 0};
    uint64_t cycles[2] = {0, 0};
    for (int h = 0; h < 2; ++h) {
        const ir::Module &m = h ? hardened : fr.module;
        mcl::BuildResult b = mcl::buildUserFromIr(m, core.isa);
        if (!b.ok) {
            std::fprintf(stderr, "%s\n", b.error.c_str());
            return 1;
        }
        UarchCampaign campaign(core, buildSystemImage(kernel, b.program));
        cycles[h] = campaign.golden().cycles;
        // Size-weighted AVF across the five structures.
        CycleSim sizer(core);
        double num = 0, den = 0;
        for (Structure s : allStructures) {
            UarchCampaignResult r = campaign.run(s, 100, 11);
            const double bits =
                static_cast<double>(sizer.structureBits(s));
            num += bits * r.avf();
            den += bits;
        }
        avf[h] = num / den;
    }
    std::printf("\nAVF (cross-layer, ax72): baseline %.3f%%, hardened "
                "%.3f%% (%+.0f%%); runtime %llu -> %llu cycles "
                "(%.2fx)\n",
                avf[0] * 100, avf[1] * 100,
                avf[0] > 0 ? (avf[1] - avf[0]) / avf[0] * 100 : 0.0,
                static_cast<unsigned long long>(cycles[0]),
                static_cast<unsigned long long>(cycles[1]),
                static_cast<double>(cycles[1]) / cycles[0]);
    std::printf("\nThe software layer reports a big win; the cross-layer "
                "measurement decides whether it is real (the paper's "
                "central point).\n");
    return 0;
}
