# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_arch_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_cosim[1]_include.cmake")
include("/root/repo/build/tests/test_swfi_ft[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_unit[1]_include.cmake")
include("/root/repo/build/tests/test_campaigns[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_timing[1]_include.cmake")
include("/root/repo/build/tests/test_arch_unit[1]_include.cmake")
include("/root/repo/build/tests/test_workload_golden[1]_include.cmake")
include("/root/repo/build/tests/test_ft_pass[1]_include.cmake")
include("/root/repo/build/tests/test_interp_unit[1]_include.cmake")
