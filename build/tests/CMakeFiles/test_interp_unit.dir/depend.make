# Empty dependencies file for test_interp_unit.
# This may be replaced when dependencies are built.
