file(REMOVE_RECURSE
  "CMakeFiles/test_interp_unit.dir/test_interp_unit.cc.o"
  "CMakeFiles/test_interp_unit.dir/test_interp_unit.cc.o.d"
  "test_interp_unit"
  "test_interp_unit.pdb"
  "test_interp_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
