file(REMOVE_RECURSE
  "CMakeFiles/test_arch_unit.dir/test_arch_unit.cc.o"
  "CMakeFiles/test_arch_unit.dir/test_arch_unit.cc.o.d"
  "test_arch_unit"
  "test_arch_unit.pdb"
  "test_arch_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
