# Empty compiler generated dependencies file for test_ft_pass.
# This may be replaced when dependencies are built.
