file(REMOVE_RECURSE
  "CMakeFiles/test_ft_pass.dir/test_ft_pass.cc.o"
  "CMakeFiles/test_ft_pass.dir/test_ft_pass.cc.o.d"
  "test_ft_pass"
  "test_ft_pass.pdb"
  "test_ft_pass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
