file(REMOVE_RECURSE
  "CMakeFiles/test_swfi_ft.dir/test_swfi_ft.cc.o"
  "CMakeFiles/test_swfi_ft.dir/test_swfi_ft.cc.o.d"
  "test_swfi_ft"
  "test_swfi_ft.pdb"
  "test_swfi_ft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swfi_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
