# Empty dependencies file for test_swfi_ft.
# This may be replaced when dependencies are built.
