# Empty compiler generated dependencies file for test_uarch_unit.
# This may be replaced when dependencies are built.
