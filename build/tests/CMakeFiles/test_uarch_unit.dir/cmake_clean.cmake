file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_unit.dir/test_uarch_unit.cc.o"
  "CMakeFiles/test_uarch_unit.dir/test_uarch_unit.cc.o.d"
  "test_uarch_unit"
  "test_uarch_unit.pdb"
  "test_uarch_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
