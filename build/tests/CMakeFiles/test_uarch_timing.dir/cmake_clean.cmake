file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_timing.dir/test_uarch_timing.cc.o"
  "CMakeFiles/test_uarch_timing.dir/test_uarch_timing.cc.o.d"
  "test_uarch_timing"
  "test_uarch_timing.pdb"
  "test_uarch_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
