file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_cosim.dir/test_uarch_cosim.cc.o"
  "CMakeFiles/test_uarch_cosim.dir/test_uarch_cosim.cc.o.d"
  "test_uarch_cosim"
  "test_uarch_cosim.pdb"
  "test_uarch_cosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
