# Empty compiler generated dependencies file for test_uarch_cosim.
# This may be replaced when dependencies are built.
