# Empty compiler generated dependencies file for cross_layer_report.
# This may be replaced when dependencies are built.
