file(REMOVE_RECURSE
  "CMakeFiles/cross_layer_report.dir/cross_layer_report.cpp.o"
  "CMakeFiles/cross_layer_report.dir/cross_layer_report.cpp.o.d"
  "cross_layer_report"
  "cross_layer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_layer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
