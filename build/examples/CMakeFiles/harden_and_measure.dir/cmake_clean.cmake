file(REMOVE_RECURSE
  "CMakeFiles/harden_and_measure.dir/harden_and_measure.cpp.o"
  "CMakeFiles/harden_and_measure.dir/harden_and_measure.cpp.o.d"
  "harden_and_measure"
  "harden_and_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_and_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
