# Empty compiler generated dependencies file for harden_and_measure.
# This may be replaced when dependencies are built.
