file(REMOVE_RECURSE
  "CMakeFiles/vstack.dir/vstack_cli.cc.o"
  "CMakeFiles/vstack.dir/vstack_cli.cc.o.d"
  "vstack"
  "vstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
