# Empty dependencies file for vstack.
# This may be replaced when dependencies are built.
