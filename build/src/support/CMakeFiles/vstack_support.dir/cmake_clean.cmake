file(REMOVE_RECURSE
  "CMakeFiles/vstack_support.dir/env.cc.o"
  "CMakeFiles/vstack_support.dir/env.cc.o.d"
  "CMakeFiles/vstack_support.dir/json.cc.o"
  "CMakeFiles/vstack_support.dir/json.cc.o.d"
  "CMakeFiles/vstack_support.dir/logging.cc.o"
  "CMakeFiles/vstack_support.dir/logging.cc.o.d"
  "CMakeFiles/vstack_support.dir/rng.cc.o"
  "CMakeFiles/vstack_support.dir/rng.cc.o.d"
  "CMakeFiles/vstack_support.dir/stats.cc.o"
  "CMakeFiles/vstack_support.dir/stats.cc.o.d"
  "CMakeFiles/vstack_support.dir/table.cc.o"
  "CMakeFiles/vstack_support.dir/table.cc.o.d"
  "libvstack_support.a"
  "libvstack_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
