# Empty dependencies file for vstack_support.
# This may be replaced when dependencies are built.
