file(REMOVE_RECURSE
  "libvstack_support.a"
)
