file(REMOVE_RECURSE
  "CMakeFiles/vstack_core.dir/resultstore.cc.o"
  "CMakeFiles/vstack_core.dir/resultstore.cc.o.d"
  "CMakeFiles/vstack_core.dir/vstack.cc.o"
  "CMakeFiles/vstack_core.dir/vstack.cc.o.d"
  "libvstack_core.a"
  "libvstack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
