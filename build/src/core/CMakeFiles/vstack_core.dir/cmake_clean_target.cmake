file(REMOVE_RECURSE
  "libvstack_core.a"
)
