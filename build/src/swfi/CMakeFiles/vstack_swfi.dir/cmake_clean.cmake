file(REMOVE_RECURSE
  "CMakeFiles/vstack_swfi.dir/interp.cc.o"
  "CMakeFiles/vstack_swfi.dir/interp.cc.o.d"
  "CMakeFiles/vstack_swfi.dir/svf.cc.o"
  "CMakeFiles/vstack_swfi.dir/svf.cc.o.d"
  "libvstack_swfi.a"
  "libvstack_swfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_swfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
