file(REMOVE_RECURSE
  "libvstack_swfi.a"
)
