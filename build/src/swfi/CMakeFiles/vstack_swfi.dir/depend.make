# Empty dependencies file for vstack_swfi.
# This may be replaced when dependencies are built.
