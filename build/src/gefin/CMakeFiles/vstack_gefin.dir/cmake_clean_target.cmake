file(REMOVE_RECURSE
  "libvstack_gefin.a"
)
