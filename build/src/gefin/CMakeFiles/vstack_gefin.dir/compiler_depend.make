# Empty compiler generated dependencies file for vstack_gefin.
# This may be replaced when dependencies are built.
