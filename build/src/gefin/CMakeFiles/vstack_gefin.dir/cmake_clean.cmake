file(REMOVE_RECURSE
  "CMakeFiles/vstack_gefin.dir/campaign.cc.o"
  "CMakeFiles/vstack_gefin.dir/campaign.cc.o.d"
  "libvstack_gefin.a"
  "libvstack_gefin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_gefin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
