# Empty compiler generated dependencies file for vstack_uarch.
# This may be replaced when dependencies are built.
