file(REMOVE_RECURSE
  "CMakeFiles/vstack_uarch.dir/cache.cc.o"
  "CMakeFiles/vstack_uarch.dir/cache.cc.o.d"
  "CMakeFiles/vstack_uarch.dir/config.cc.o"
  "CMakeFiles/vstack_uarch.dir/config.cc.o.d"
  "CMakeFiles/vstack_uarch.dir/core.cc.o"
  "CMakeFiles/vstack_uarch.dir/core.cc.o.d"
  "CMakeFiles/vstack_uarch.dir/taint.cc.o"
  "CMakeFiles/vstack_uarch.dir/taint.cc.o.d"
  "libvstack_uarch.a"
  "libvstack_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
