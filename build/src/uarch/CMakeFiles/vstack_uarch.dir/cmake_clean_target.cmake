file(REMOVE_RECURSE
  "libvstack_uarch.a"
)
