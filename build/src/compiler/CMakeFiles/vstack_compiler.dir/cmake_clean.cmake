file(REMOVE_RECURSE
  "CMakeFiles/vstack_compiler.dir/backend.cc.o"
  "CMakeFiles/vstack_compiler.dir/backend.cc.o.d"
  "CMakeFiles/vstack_compiler.dir/compile.cc.o"
  "CMakeFiles/vstack_compiler.dir/compile.cc.o.d"
  "CMakeFiles/vstack_compiler.dir/ir.cc.o"
  "CMakeFiles/vstack_compiler.dir/ir.cc.o.d"
  "CMakeFiles/vstack_compiler.dir/irgen.cc.o"
  "CMakeFiles/vstack_compiler.dir/irgen.cc.o.d"
  "CMakeFiles/vstack_compiler.dir/lexer.cc.o"
  "CMakeFiles/vstack_compiler.dir/lexer.cc.o.d"
  "CMakeFiles/vstack_compiler.dir/parser.cc.o"
  "CMakeFiles/vstack_compiler.dir/parser.cc.o.d"
  "libvstack_compiler.a"
  "libvstack_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
