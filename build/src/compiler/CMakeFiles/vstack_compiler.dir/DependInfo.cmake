
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/backend.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/backend.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/backend.cc.o.d"
  "/root/repo/src/compiler/compile.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/compile.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/compile.cc.o.d"
  "/root/repo/src/compiler/ir.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/ir.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/ir.cc.o.d"
  "/root/repo/src/compiler/irgen.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/irgen.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/irgen.cc.o.d"
  "/root/repo/src/compiler/lexer.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/lexer.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/lexer.cc.o.d"
  "/root/repo/src/compiler/parser.cc" "src/compiler/CMakeFiles/vstack_compiler.dir/parser.cc.o" "gcc" "src/compiler/CMakeFiles/vstack_compiler.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/vstack_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vstack_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vstack_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
