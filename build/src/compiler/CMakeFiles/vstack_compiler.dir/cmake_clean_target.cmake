file(REMOVE_RECURSE
  "libvstack_compiler.a"
)
