# Empty compiler generated dependencies file for vstack_compiler.
# This may be replaced when dependencies are built.
