file(REMOVE_RECURSE
  "libvstack_arch.a"
)
