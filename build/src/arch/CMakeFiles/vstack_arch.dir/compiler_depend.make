# Empty compiler generated dependencies file for vstack_arch.
# This may be replaced when dependencies are built.
