file(REMOVE_RECURSE
  "CMakeFiles/vstack_arch.dir/archsim.cc.o"
  "CMakeFiles/vstack_arch.dir/archsim.cc.o.d"
  "CMakeFiles/vstack_arch.dir/pvf.cc.o"
  "CMakeFiles/vstack_arch.dir/pvf.cc.o.d"
  "libvstack_arch.a"
  "libvstack_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
