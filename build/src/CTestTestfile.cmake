# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("machine")
subdirs("compiler")
subdirs("arch")
subdirs("kernel")
subdirs("workloads")
subdirs("swfi")
subdirs("ft")
subdirs("uarch")
subdirs("gefin")
subdirs("core")
