file(REMOVE_RECURSE
  "libvstack_ft.a"
)
