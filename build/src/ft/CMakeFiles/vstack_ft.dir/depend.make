# Empty dependencies file for vstack_ft.
# This may be replaced when dependencies are built.
