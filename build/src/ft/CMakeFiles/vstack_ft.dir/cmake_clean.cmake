file(REMOVE_RECURSE
  "CMakeFiles/vstack_ft.dir/harden.cc.o"
  "CMakeFiles/vstack_ft.dir/harden.cc.o.d"
  "libvstack_ft.a"
  "libvstack_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
