# Empty dependencies file for vstack_kernel.
# This may be replaced when dependencies are built.
