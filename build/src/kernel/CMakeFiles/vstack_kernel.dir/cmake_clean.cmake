file(REMOVE_RECURSE
  "CMakeFiles/vstack_kernel.dir/kernel.cc.o"
  "CMakeFiles/vstack_kernel.dir/kernel.cc.o.d"
  "libvstack_kernel.a"
  "libvstack_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
