file(REMOVE_RECURSE
  "libvstack_kernel.a"
)
