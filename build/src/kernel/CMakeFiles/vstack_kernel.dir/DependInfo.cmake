
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/vstack_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/vstack_kernel.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/vstack_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vstack_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vstack_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vstack_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
