file(REMOVE_RECURSE
  "libvstack_machine.a"
)
