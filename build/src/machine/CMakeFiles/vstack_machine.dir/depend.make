# Empty dependencies file for vstack_machine.
# This may be replaced when dependencies are built.
