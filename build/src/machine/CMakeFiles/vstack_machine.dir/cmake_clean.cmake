file(REMOVE_RECURSE
  "CMakeFiles/vstack_machine.dir/devices.cc.o"
  "CMakeFiles/vstack_machine.dir/devices.cc.o.d"
  "CMakeFiles/vstack_machine.dir/physmem.cc.o"
  "CMakeFiles/vstack_machine.dir/physmem.cc.o.d"
  "libvstack_machine.a"
  "libvstack_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
