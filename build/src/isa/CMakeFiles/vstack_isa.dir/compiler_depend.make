# Empty compiler generated dependencies file for vstack_isa.
# This may be replaced when dependencies are built.
