file(REMOVE_RECURSE
  "CMakeFiles/vstack_isa.dir/assembler.cc.o"
  "CMakeFiles/vstack_isa.dir/assembler.cc.o.d"
  "CMakeFiles/vstack_isa.dir/isa.cc.o"
  "CMakeFiles/vstack_isa.dir/isa.cc.o.d"
  "CMakeFiles/vstack_isa.dir/program.cc.o"
  "CMakeFiles/vstack_isa.dir/program.cc.o.d"
  "CMakeFiles/vstack_isa.dir/semantics.cc.o"
  "CMakeFiles/vstack_isa.dir/semantics.cc.o.d"
  "libvstack_isa.a"
  "libvstack_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
