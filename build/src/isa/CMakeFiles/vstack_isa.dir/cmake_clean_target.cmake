file(REMOVE_RECURSE
  "libvstack_isa.a"
)
