file(REMOVE_RECURSE
  "libvstack_workloads.a"
)
