# Empty compiler generated dependencies file for vstack_workloads.
# This may be replaced when dependencies are built.
