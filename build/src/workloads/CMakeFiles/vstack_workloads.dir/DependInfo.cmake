
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/w_codec.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_codec.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_codec.cc.o.d"
  "/root/repo/src/workloads/w_crypto.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_crypto.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_crypto.cc.o.d"
  "/root/repo/src/workloads/w_dsp.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_dsp.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_dsp.cc.o.d"
  "/root/repo/src/workloads/w_image.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_image.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_image.cc.o.d"
  "/root/repo/src/workloads/w_sort_graph.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_sort_graph.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/w_sort_graph.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/vstack_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/vstack_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vstack_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
