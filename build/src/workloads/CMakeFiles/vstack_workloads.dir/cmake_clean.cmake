file(REMOVE_RECURSE
  "CMakeFiles/vstack_workloads.dir/w_codec.cc.o"
  "CMakeFiles/vstack_workloads.dir/w_codec.cc.o.d"
  "CMakeFiles/vstack_workloads.dir/w_crypto.cc.o"
  "CMakeFiles/vstack_workloads.dir/w_crypto.cc.o.d"
  "CMakeFiles/vstack_workloads.dir/w_dsp.cc.o"
  "CMakeFiles/vstack_workloads.dir/w_dsp.cc.o.d"
  "CMakeFiles/vstack_workloads.dir/w_image.cc.o"
  "CMakeFiles/vstack_workloads.dir/w_image.cc.o.d"
  "CMakeFiles/vstack_workloads.dir/w_sort_graph.cc.o"
  "CMakeFiles/vstack_workloads.dir/w_sort_graph.cc.o.d"
  "CMakeFiles/vstack_workloads.dir/workloads.cc.o"
  "CMakeFiles/vstack_workloads.dir/workloads.cc.o.d"
  "libvstack_workloads.a"
  "libvstack_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
