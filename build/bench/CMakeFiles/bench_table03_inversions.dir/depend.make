# Empty dependencies file for bench_table03_inversions.
# This may be replaced when dependencies are built.
