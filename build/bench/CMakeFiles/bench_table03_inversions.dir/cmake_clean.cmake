file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_inversions.dir/bench_table03_inversions.cc.o"
  "CMakeFiles/bench_table03_inversions.dir/bench_table03_inversions.cc.o.d"
  "bench_table03_inversions"
  "bench_table03_inversions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_inversions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
