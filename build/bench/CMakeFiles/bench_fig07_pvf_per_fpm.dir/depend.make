# Empty dependencies file for bench_fig07_pvf_per_fpm.
# This may be replaced when dependencies are built.
