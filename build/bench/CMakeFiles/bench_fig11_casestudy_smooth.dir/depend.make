# Empty dependencies file for bench_fig11_casestudy_smooth.
# This may be replaced when dependencies are built.
