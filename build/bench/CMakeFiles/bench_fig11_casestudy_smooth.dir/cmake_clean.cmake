file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_casestudy_smooth.dir/bench_fig11_casestudy_smooth.cc.o"
  "CMakeFiles/bench_fig11_casestudy_smooth.dir/bench_fig11_casestudy_smooth.cc.o.d"
  "bench_fig11_casestudy_smooth"
  "bench_fig11_casestudy_smooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_casestudy_smooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
