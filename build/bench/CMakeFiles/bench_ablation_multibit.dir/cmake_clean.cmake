file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multibit.dir/bench_ablation_multibit.cc.o"
  "CMakeFiles/bench_ablation_multibit.dir/bench_ablation_multibit.cc.o.d"
  "bench_ablation_multibit"
  "bench_ablation_multibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
