file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_rpvf.dir/bench_fig08_rpvf.cc.o"
  "CMakeFiles/bench_fig08_rpvf.dir/bench_fig08_rpvf.cc.o.d"
  "bench_fig08_rpvf"
  "bench_fig08_rpvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_rpvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
