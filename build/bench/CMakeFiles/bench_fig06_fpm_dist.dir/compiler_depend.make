# Empty compiler generated dependencies file for bench_fig06_fpm_dist.
# This may be replaced when dependencies are built.
