file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_hvf_fpm.dir/bench_fig05_hvf_fpm.cc.o"
  "CMakeFiles/bench_fig05_hvf_fpm.dir/bench_fig05_hvf_fpm.cc.o.d"
  "bench_fig05_hvf_fpm"
  "bench_fig05_hvf_fpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_hvf_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
