# Empty dependencies file for bench_fig05_hvf_fpm.
# This may be replaced when dependencies are built.
