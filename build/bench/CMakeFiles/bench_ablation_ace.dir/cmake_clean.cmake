file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ace.dir/bench_ablation_ace.cc.o"
  "CMakeFiles/bench_ablation_ace.dir/bench_ablation_ace.cc.o.d"
  "bench_ablation_ace"
  "bench_ablation_ace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
