# Empty compiler generated dependencies file for bench_ablation_ace.
# This may be replaced when dependencies are built.
