# Empty compiler generated dependencies file for bench_fig10_casestudy_sha.
# This may be replaced when dependencies are built.
