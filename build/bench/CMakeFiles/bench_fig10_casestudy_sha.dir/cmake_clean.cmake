file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_casestudy_sha.dir/bench_fig10_casestudy_sha.cc.o"
  "CMakeFiles/bench_fig10_casestudy_sha.dir/bench_fig10_casestudy_sha.cc.o.d"
  "bench_fig10_casestudy_sha"
  "bench_fig10_casestudy_sha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_casestudy_sha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
