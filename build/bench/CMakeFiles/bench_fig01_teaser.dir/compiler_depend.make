# Empty compiler generated dependencies file for bench_fig01_teaser.
# This may be replaced when dependencies are built.
