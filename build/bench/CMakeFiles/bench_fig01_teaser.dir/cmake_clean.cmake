file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_teaser.dir/bench_fig01_teaser.cc.o"
  "CMakeFiles/bench_fig01_teaser.dir/bench_fig01_teaser.cc.o.d"
  "bench_fig01_teaser"
  "bench_fig01_teaser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_teaser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
