file(REMOVE_RECURSE
  "CMakeFiles/vstack_bench_common.dir/casestudy.cc.o"
  "CMakeFiles/vstack_bench_common.dir/casestudy.cc.o.d"
  "libvstack_bench_common.a"
  "libvstack_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
