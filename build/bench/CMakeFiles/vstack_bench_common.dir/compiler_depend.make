# Empty compiler generated dependencies file for vstack_bench_common.
# This may be replaced when dependencies are built.
