file(REMOVE_RECURSE
  "libvstack_bench_common.a"
)
