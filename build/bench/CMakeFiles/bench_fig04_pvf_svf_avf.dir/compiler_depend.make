# Empty compiler generated dependencies file for bench_fig04_pvf_svf_avf.
# This may be replaced when dependencies are built.
