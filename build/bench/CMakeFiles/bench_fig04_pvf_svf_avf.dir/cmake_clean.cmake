file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_pvf_svf_avf.dir/bench_fig04_pvf_svf_avf.cc.o"
  "CMakeFiles/bench_fig04_pvf_svf_avf.dir/bench_fig04_pvf_svf_avf.cc.o.d"
  "bench_fig04_pvf_svf_avf"
  "bench_fig04_pvf_svf_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_pvf_svf_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
