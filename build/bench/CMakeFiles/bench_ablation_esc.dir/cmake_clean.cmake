file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_esc.dir/bench_ablation_esc.cc.o"
  "CMakeFiles/bench_ablation_esc.dir/bench_ablation_esc.cc.o.d"
  "bench_ablation_esc"
  "bench_ablation_esc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_esc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
