# Empty dependencies file for bench_ablation_esc.
# This may be replaced when dependencies are built.
