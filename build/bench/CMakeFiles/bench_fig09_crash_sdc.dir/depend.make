# Empty dependencies file for bench_fig09_crash_sdc.
# This may be replaced when dependencies are built.
