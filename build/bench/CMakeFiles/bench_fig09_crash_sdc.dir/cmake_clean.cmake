file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_crash_sdc.dir/bench_fig09_crash_sdc.cc.o"
  "CMakeFiles/bench_fig09_crash_sdc.dir/bench_fig09_crash_sdc.cc.o.d"
  "bench_fig09_crash_sdc"
  "bench_fig09_crash_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_crash_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
