
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_sampling.cc" "bench/CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vstack_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vstack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gefin/CMakeFiles/vstack_gefin.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/vstack_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/vstack_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/swfi/CMakeFiles/vstack_swfi.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/vstack_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/vstack_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vstack_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/vstack_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vstack_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vstack_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vstack_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
