#!/usr/bin/env bash
# vstackd smoke: the campaign service end to end, through the real
# binaries.  Three phases, each against a fresh store:
#
#   1. two concurrent clients submit disjoint manifests to one daemon;
#      each client's stdout must be byte-identical to a serial
#      `vstack suite --serial` run of its manifest, the daemon's store
#      byte-identical to a serial run of the union, and a SIGTERM must
#      drain the daemon to exit 0.
#   2. socket chaos: the daemon runs with the three socket failpoints
#      armed (accept EINTR, read EINTR storm, torn frame write); the
#      client must still finish with the same bytes — a torn stream
#      costs a reconnect and an idempotent resubmission, never data.
#   3. SIGKILL mid-campaign (journal.append.kill inside the daemon),
#      restart, and recovery: the restarted daemon re-queues the
#      persisted job, the retrying client completes, and the final
#      store is byte-identical to the serial reference.
#
# Usage: tools/vstackd_smoke.sh [--smoke] [build-dir]
#   --smoke  same coverage, smaller fault counts (CI-sized)
# Env: VSTACK_FAULTS (default 24)
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
vstack="${build}/tools/vstack"
vstackd="${build}/tools/vstackd"
for bin in "${vstack}" "${vstackd}"; do
    if [ ! -x "${bin}" ]; then
        echo "error: ${bin} not built (cmake --build ${build})" >&2
        exit 1
    fi
done

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "${daemon_pid}" ] && kill -0 "${daemon_pid}" 2>/dev/null; then
        kill -9 "${daemon_pid}" 2>/dev/null || true
    fi
    rm -rf "${work}"
}
trap cleanup EXIT

faults="${VSTACK_FAULTS:-24}"
if [ "${smoke}" = 1 ]; then
    faults=16
fi
sock="${work}/vstackd.sock"

cat > "${work}/mA.json" <<'EOF'
{"campaigns": [
  {"layer": "pvf", "workload": "fft", "isa": "av64", "fpm": "WD"},
  {"layer": "svf", "workload": "fft"}
]}
EOF
cat > "${work}/mB.json" <<'EOF'
{"campaigns": [
  {"layer": "svf", "workload": "qsort"},
  {"layer": "uarch", "workload": "fft", "core": "ax72", "structure": "RF"}
]}
EOF
cat > "${work}/mAB.json" <<'EOF'
{"campaigns": [
  {"layer": "pvf", "workload": "fft", "isa": "av64", "fpm": "WD"},
  {"layer": "svf", "workload": "fft"},
  {"layer": "svf", "workload": "qsort"},
  {"layer": "uarch", "workload": "fft", "core": "ax72", "structure": "RF"}
]}
EOF

echo "=== vstackd smoke: faults=${faults}"

echo "=== serial references"
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/refA.store" \
    "${vstack}" suite "${work}/mA.json" --serial \
    > "${work}/refA.out" 2>/dev/null
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/refB.store" \
    "${vstack}" suite "${work}/mB.json" --serial \
    > "${work}/refB.out" 2>/dev/null
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/refAB.store" \
    "${vstack}" suite "${work}/mAB.json" --serial \
    > /dev/null 2>&1

# start_daemon <store-dir> [env VAR=VAL...]: launch vstackd on ${sock}
# and wait until a status round-trip succeeds.
start_daemon() {
    local store="$1"
    shift
    env VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${store}" "$@" \
        "${vstackd}" --socket "${sock}" > /dev/null \
        2> "${store}.daemon.err" &
    daemon_pid=$!
    for _ in $(seq 100); do
        if VSTACK_FAILPOINTS= "${vstack}" status --socket "${sock}" \
               > /dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "${daemon_pid}" 2>/dev/null; then
            return 0 # died already (expected in the chaos phase)
        fi
        sleep 0.1
    done
    echo "FAIL: vstackd did not come up on ${sock}" >&2
    exit 1
}

stop_daemon() { # graceful: SIGTERM must drain to exit 0
    kill -TERM "${daemon_pid}"
    local rc=0
    wait "${daemon_pid}" || rc=$?
    daemon_pid=""
    if [ "${rc}" != 0 ]; then
        echo "FAIL: vstackd SIGTERM drain exited ${rc}, want 0" >&2
        exit 1
    fi
}

echo "=== phase 1: two concurrent clients vs one daemon"
start_daemon "${work}/d1.store"
"${vstack}" submit "${work}/mA.json" --socket "${sock}" --client alice \
    > "${work}/outA" 2> /dev/null &
clientA=$!
"${vstack}" submit "${work}/mB.json" --socket "${sock}" --client bob \
    > "${work}/outB" 2> /dev/null &
clientB=$!
wait "${clientA}" || { echo "FAIL: client A exited non-zero" >&2; exit 1; }
wait "${clientB}" || { echo "FAIL: client B exited non-zero" >&2; exit 1; }
cmp "${work}/refA.out" "${work}/outA" || {
    echo "FAIL: client A stdout differs from the serial run" >&2
    exit 1
}
cmp "${work}/refB.out" "${work}/outB" || {
    echo "FAIL: client B stdout differs from the serial run" >&2
    exit 1
}
stop_daemon
diff -r -x vstackd "${work}/refAB.store" "${work}/d1.store" \
    > /dev/null || {
    echo "FAIL: daemon store differs from the serial union store" >&2
    exit 1
}
echo "    client stdout + store byte-identical; drain exited 0"

echo "=== phase 2: socket failpoint chaos"
# EINTR on 1-in-3 accepts, 1-in-2 reads, and a torn write on the
# daemon's 3rd frame: the client must reconnect + resubmit (dedup
# makes the retry cheap) and still produce the reference bytes.
start_daemon "${work}/d2.store" VSTACK_FAILPOINTS="service.accept.eintr=1/3,service.read.eintr=1/2,service.write.short_write=@3"
VSTACK_FAILPOINTS= "${vstack}" submit "${work}/mA.json" \
    --socket "${sock}" --client chaos \
    > "${work}/outC" 2> /dev/null || {
    echo "FAIL: submit under socket chaos exited non-zero" >&2
    exit 1
}
cmp "${work}/refA.out" "${work}/outC" || {
    echo "FAIL: socket-chaos stdout differs from the serial run" >&2
    exit 1
}
stop_daemon
echo "    torn frames and EINTR storms survived; bytes identical"

echo "=== phase 3: SIGKILL mid-campaign, restart, resume"
# The daemon dies by _exit(137) exactly mid-journal-append; the
# admitted manifest and the partial journals stay on disk.
start_daemon "${work}/d3.store" VSTACK_FAILPOINTS="journal.append.kill=@$((faults + 5))"
VSTACK_FAILPOINTS= "${vstack}" submit "${work}/mA.json" \
    --socket "${sock}" --client phoenix \
    > "${work}/outK" 2> /dev/null &
clientK=$!
rc=0
wait "${daemon_pid}" || rc=$?
daemon_pid=""
if [ "${rc}" != 137 ]; then
    echo "FAIL: expected the daemon to die with 137, got ${rc}" >&2
    exit 1
fi
echo "    daemon died mid-append as scheduled (exit 137)"
# Restart clean: recovery re-queues the persisted job and the client's
# backoff retry resubmits idempotently on top of it.
start_daemon "${work}/d3.store"
wait "${clientK}" || {
    echo "FAIL: retrying client exited non-zero after the restart" >&2
    exit 1
}
cmp "${work}/refA.out" "${work}/outK" || {
    echo "FAIL: post-restart stdout differs from the serial run" >&2
    exit 1
}
if ! grep -q "recovered 1 interrupted job" "${work}/d3.store.daemon.err"
then
    echo "FAIL: restarted daemon did not report the recovered job" >&2
    exit 1
fi
stop_daemon
diff -r -x vstackd "${work}/refA.store" "${work}/d3.store" \
    > /dev/null || {
    echo "FAIL: recovered store differs from the serial reference" >&2
    exit 1
}
echo "    restart recovered the job; store byte-identical"

echo "=== vstackd smoke passed"
