/**
 * @file
 * vstack-worker: one fleet worker process.
 *
 * Spawned by the fleet supervisor (service/fleet.h) with its
 * CRC-framed control socket on an inherited descriptor; not meant to
 * be run by hand.  Exits 0 on a clean EOF from the supervisor, 2 on a
 * corrupt stream, 64 on usage errors.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/fleet.h"

int
main(int argc, char **argv)
{
    int fd = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fd") == 0 && i + 1 < argc) {
            char *end = nullptr;
            fd = static_cast<int>(std::strtol(argv[++i], &end, 10));
            if (!end || *end != '\0' || fd < 0) {
                std::fprintf(stderr, "vstack-worker: bad --fd value\n");
                return 64;
            }
        } else {
            std::fprintf(stderr,
                         "usage: vstack-worker [--fd N]  (spawned by the "
                         "fleet supervisor; see vstack suite --fleet)\n");
            return 64;
        }
    }
    return vstack::service::runFleetWorker(fd);
}
