#!/usr/bin/env bash
# Suite-scheduler smoke: run the fig04 campaign set (PVF + SVF + all
# uarch structures, every paper workload) twice through `vstack suite`
# — once --serial (each campaign through the stack entry points, one
# after another) and once through the pooled scheduler — and require
# the two runs to be byte-identical: same stdout report, same
# ResultStore directory tree, bit for bit.
#
# Full mode also times both runs cold (fresh store per repetition,
# best of 3) and emits BENCH_suite.json.  The >= MIN_SPEEDUP assertion
# only applies on hosts with >= 2 usable CPUs: a parallel scheduler
# cannot beat a serial run on one core, so single-CPU hosts record the
# measured ratio and the CPU count instead of failing.
#
# Usage: tools/suite_smoke.sh [--smoke] [build-dir]
#   --smoke  3-campaign manifest, one repetition, byte-identity only
#            (CI-sized; no BENCH file, no speedup assertion)
# Env: VSTACK_FAULTS (default 24), MIN_SPEEDUP (default 1.3)
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
vstack="${build}/tools/vstack"
if [ ! -x "${vstack}" ]; then
    echo "error: ${vstack} not built (cmake --build ${build})" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

faults="${VSTACK_FAULTS:-24}"
min_speedup="${MIN_SPEEDUP:-1.3}"
jobs=4
reps=3
if [ "${smoke}" = 1 ]; then
    # A cross-layer slice small enough for a sanitizer build: one PVF,
    # one SVF, and one full uarch structure sweep on a shared golden.
    cat > "${work}/manifest.json" <<'EOF'
{"campaigns": [
  {"layer": "pvf", "workload": "fft", "isa": "av64", "fpm": "WD"},
  {"layer": "svf", "workload": "fft"},
  {"layer": "uarch", "workload": "fft", "core": "ax72", "structure": "*"}
]}
EOF
    reps=1
else
    # The fig04 set: every paper workload at all three layers.
    cat > "${work}/manifest.json" <<'EOF'
{"campaigns": [
  {"layer": "pvf", "workload": "*", "isa": "av64", "fpm": "WD"},
  {"layer": "svf", "workload": "*"},
  {"layer": "uarch", "workload": "*", "core": "ax72", "structure": "*"}
]}
EOF
fi

# run_mode <name> <extra-flags...>: cold suite run into a fresh store;
# prints elapsed milliseconds.  Stdout report lands in ${work}/<name>.out,
# the store in ${work}/<name>.store (overwritten each repetition — the
# last one is what the byte-identity check compares).
run_mode() {
    local name="$1"
    shift
    rm -rf "${work}/${name}.store"
    local t0 t1
    t0=$(date +%s%N)
    VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/${name}.store" \
        "${vstack}" suite "${work}/manifest.json" --jobs "${jobs}" "$@" \
        > "${work}/${name}.out" 2> "${work}/${name}.err"
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}

echo "=== suite smoke: faults=${faults} jobs=${jobs} reps=${reps}"

serial_ms=""
suite_ms=""
for rep in $(seq "${reps}"); do
    s=$(run_mode serial --serial)
    p=$(run_mode suite)
    echo "    rep ${rep}: serial=${s}ms suite=${p}ms"
    if [ -z "${serial_ms}" ] || [ "${s}" -lt "${serial_ms}" ]; then
        serial_ms="${s}"
    fi
    if [ -z "${suite_ms}" ] || [ "${p}" -lt "${suite_ms}" ]; then
        suite_ms="${p}"
    fi
done

cmp "${work}/serial.out" "${work}/suite.out" || {
    echo "FAIL: scheduled suite report differs from the serial run" >&2
    exit 1
}
diff -r "${work}/serial.store" "${work}/suite.store" > /dev/null || {
    echo "FAIL: scheduled ResultStore differs from the serial store" >&2
    exit 1
}
echo "    stdout and store byte-identical (serial vs scheduled)"

if [ "${smoke}" = 1 ]; then
    echo "=== suite smoke passed (byte-identity)"
    exit 0
fi

cpus="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
campaigns="$(awk '/^suite: [0-9]+ campaigns$/ { print $2 }' \
                 "${work}/serial.out")"
speedup="$(awk -v s="${serial_ms}" -v p="${suite_ms}" \
               'BEGIN { printf "%.2f", s / p }')"
echo "    best-of-${reps}: serial=${serial_ms}ms suite=${suite_ms}ms" \
     "speedup=${speedup}x (${cpus} cpu(s))"

if [ "${cpus}" -ge 2 ]; then
    awk -v sp="${speedup}" -v min="${min_speedup}" \
        'BEGIN { exit (sp >= min) ? 0 : 1 }' || {
        echo "FAIL: speedup ${speedup}x < required ${min_speedup}x" >&2
        exit 1
    }
else
    echo "    NOTE: single-CPU host — a pooled scheduler cannot beat" \
         "serial on one core; recording the ratio, skipping the" \
         ">=${min_speedup}x assertion"
fi

cat > BENCH_suite.json <<EOF
{
  "bench": "suite_scheduler",
  "manifest": "fig04",
  "campaigns": ${campaigns},
  "faults": ${faults},
  "jobs": ${jobs},
  "serial_ms": ${serial_ms},
  "suite_ms": ${suite_ms},
  "speedup": ${speedup},
  "min_speedup": ${min_speedup},
  "cpus": ${cpus},
  "byte_identical": true
}
EOF
echo "=== suite smoke passed (BENCH_suite.json written)"
