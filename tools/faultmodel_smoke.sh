#!/usr/bin/env bash
# Fault-model plugin smoke: prove the pluggable sampler (src/fault)
# kept every determinism contract the layers had before it existed.
#
#   1. single-bit byte-identity: the reference manifest (all three
#      layers) against the pre-refactor ResultStore committed under
#      tests/data/faultmodel_reference — cmp per file, bit for bit;
#   2. one campaign per non-default model (spatial-multibit,
#      sram-undervolt, em-burst) at two --jobs widths, on both the
#      uarch and SVF layers: reports and stores must match;
#   3. kill + resume identity: SIGKILL a live em-burst campaign
#      mid-run, `--resume` the remainder, and require the final
#      report to match an uninterrupted run byte for byte.
#
# Usage: tools/faultmodel_smoke.sh [--smoke] [build-dir]
#   --smoke  CI/sanitizer-sized: smaller campaigns, one kill
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
vstack="${build}/tools/vstack"
if [ ! -x "${vstack}" ]; then
    echo "error: ${vstack} not built (cmake --build ${build})" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

ref="tests/data/faultmodel_reference"
if [ "${smoke}" = 1 ]; then
    model_n=12
    resume_n=150
    kills=1
    kill_delay=0.3
else
    model_n=32
    resume_n=200
    kills=3
    kill_delay=0.6
fi

echo "=== 1. single-bit byte-identity vs the pre-refactor store"
# The committed reference was produced before sampling moved into
# src/fault, with exactly these knobs; the default model must
# reproduce it bit for bit (same keys, same payload bytes).
VSTACK_FAULTS=10 VSTACK_SEED=42 VSTACK_JOBS=2 \
    VSTACK_RESULTS="${work}/default" \
    "${vstack}" suite "${ref}/manifest.json" > "${work}/default.out" \
    2> "${work}/default.err"
for f in "${ref}"/*.json; do
    b="$(basename "${f}")"
    [ "${b}" = "manifest.json" ] && continue
    cmp "${f}" "${work}/default/${b}" || {
        echo "FAIL: ${b} differs from the pre-refactor reference" >&2
        exit 1
    }
done
echo "    $(ls "${ref}"/*.json | grep -cv manifest) store files identical"

echo "=== 2. per-model determinism across --jobs widths"
models=(
    "spatial-multibit:cluster=4,stride=3"
    "sram-undervolt:vdd=0.8,banks=8,droop=0.02,asym=0.25"
    "em-burst:window=64,flips=3"
)
for m in "${models[@]}"; do
    name="${m%%:*}"
    for layer in uarch svf; do
        if [ "${layer}" = uarch ]; then
            cmd=(campaign sha --core ax72 --structure RF)
        else
            cmd=(svf fft)
        fi
        rm -rf "${work}/a.store" "${work}/b.store"
        VSTACK_RESULTS="${work}/a.store" "${vstack}" "${cmd[@]}" \
            -n "${model_n}" --seed 7 --jobs 1 --fault-model "${m}" \
            > "${work}/a.out" 2>/dev/null
        VSTACK_RESULTS="${work}/b.store" "${vstack}" "${cmd[@]}" \
            -n "${model_n}" --seed 7 --jobs 3 --fault-model "${m}" \
            > "${work}/b.out" 2>/dev/null
        cmp "${work}/a.out" "${work}/b.out" || {
            echo "FAIL: ${name}/${layer} report differs at jobs=3" >&2
            exit 1
        }
        diff -r "${work}/a.store" "${work}/b.store" > /dev/null || {
            echo "FAIL: ${name}/${layer} store differs at jobs=3" >&2
            exit 1
        }
        echo "    ${name}/${layer}: jobs=1 == jobs=3"
    done
done

echo "=== 3. kill + resume identity under em-burst"
cmd=(campaign sha --core ax72 --structure RF -n "${resume_n}" --seed 7
     --jobs 2 --fault-model "em-burst:window=64,flips=3")
VSTACK_RESULTS="${work}/rref" "${vstack}" "${cmd[@]}" \
    > "${work}/rref.out" 2>/dev/null
for k in $(seq 1 "${kills}"); do
    VSTACK_RESULTS="${work}/hot" "${vstack}" "${cmd[@]}" --resume \
        > /dev/null 2>&1 &
    pid=$!
    sleep "${kill_delay}"
    if kill -KILL "${pid}" 2>/dev/null; then
        echo "    kill ${k}: landed"
    else
        echo "    kill ${k}: campaign already finished"
    fi
    wait "${pid}" 2>/dev/null || true
done
VSTACK_RESULTS="${work}/hot" "${vstack}" "${cmd[@]}" --resume \
    > "${work}/final.out" 2>/dev/null
cmp "${work}/rref.out" "${work}/final.out" || {
    echo "FAIL: resumed em-burst report differs from uninterrupted" >&2
    exit 1
}
echo "    resumed report byte-identical"

echo "=== fault-model smoke passed"
