#!/usr/bin/env bash
# Crash-consistency stress for the campaign journal: SIGKILL a live
# isolated campaign several times mid-run, then let `--resume` finish
# the remainder and verify the final report is byte-identical to an
# uninterrupted run (per-sample RNG derivation makes the aggregate
# independent of where the kills landed).
#
# Usage: tools/stress_resume.sh [build-dir] [kills]
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
kills="${2:-3}"
vstack="${build}/tools/vstack"
if [ ! -x "${vstack}" ]; then
    echo "error: ${vstack} not built (cmake --build ${build})" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

cmd=(campaign sha --core ax72 --structure RF -n 200 --seed 7 --jobs 2)

echo "=== reference: uninterrupted run"
VSTACK_RESULTS="${work}/ref" "${vstack}" "${cmd[@]}" > "${work}/ref.out" 2>/dev/null

echo "=== killing a live isolated campaign ${kills} time(s)"
for k in $(seq 1 "${kills}"); do
    VSTACK_RESULTS="${work}/hot" "${vstack}" "${cmd[@]}" --isolate --resume \
        > "${work}/kill${k}.out" 2>/dev/null &
    pid=$!
    sleep 0.6
    if kill -KILL "${pid}" 2>/dev/null; then
        echo "    kill ${k}: landed"
    else
        echo "    kill ${k}: campaign already finished"
    fi
    wait "${pid}" 2>/dev/null || true
done

echo "=== final resume must match the reference byte-for-byte"
VSTACK_RESULTS="${work}/hot" "${vstack}" "${cmd[@]}" --isolate --resume \
    > "${work}/final.out" 2>/dev/null
cmp "${work}/ref.out" "${work}/final.out"
echo "=== stress resume passed (${kills} kills, byte-identical report)"
