#!/usr/bin/env bash
# Chaos sweep over real `vstack campaign` runs: arm deterministic
# failpoint schedules (VSTACK_FAILPOINTS) inside the CLI so the
# process suffers short writes, EINTR storms, or dies mid-append;
# then resume and require the recovered report to be byte-identical
# to an uninterrupted run (cmp on stdout).  Storage-fault notices go
# to stderr precisely so this comparison stays byte-exact.
#
# Complements tests/test_chaos.cc: that file proves the recovery
# invariants at the executor level; this script proves them end to
# end through the CLI, the journal files on disk, and --verify-replay.
#
# Usage: tools/chaos_campaign.sh [--smoke] [build-dir]
#   --smoke  one schedule at one jobs count (CI-sized)
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
vstack="${build}/tools/vstack"
if [ ! -x "${vstack}" ]; then
    echo "error: ${vstack} not built (cmake --build ${build})" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

n=200
kill_at=60
jobs_list="1 2"
if [ "${smoke}" = 1 ]; then
    n=80
    kill_at=25
    jobs_list="2"
fi

cmd=(campaign sha --core ax72 --structure RF -n "${n}" --seed 7)

echo "=== reference: uninterrupted run (n=${n})"
VSTACK_RESULTS="${work}/ref" "${vstack}" "${cmd[@]}" --jobs 1 \
    > "${work}/ref.out" 2> /dev/null

# run_chaos <name> <jobs> <schedule> <fsync> <expect-kill>
#   Phase 1 runs the campaign with the schedule armed; with
#   expect-kill=1 the process must die with _exit(137) mid-append.
#   Phase 2 resumes with failpoints disarmed and --verify-replay=20
#   (a fifth of the replayed samples re-simulated and checked), and
#   the final stdout must be byte-identical to the reference.
run_chaos() {
    local name="$1" jobs="$2" schedule="$3" fsync="$4" expect_kill="$5"
    local dir="${work}/${name}-j${jobs}"
    echo "=== ${name} (jobs=${jobs}): '${schedule}'"

    local rc=0
    VSTACK_RESULTS="${dir}" VSTACK_FAILPOINTS="${schedule}" \
        VSTACK_JOURNAL_FSYNC="${fsync}" \
        "${vstack}" "${cmd[@]}" --jobs "${jobs}" --resume \
        > "${dir}.chaos.out" 2> "${dir}.chaos.err" || rc=$?

    if [ "${expect_kill}" = 1 ]; then
        if [ "${rc}" != 137 ]; then
            echo "FAIL: expected the chaos run to die with 137, got ${rc}" >&2
            exit 1
        fi
        echo "    chaos run died mid-append as scheduled (exit 137)"
        local out
        out="$(VSTACK_RESULTS="${dir}" "${vstack}" "${cmd[@]}" \
                   --jobs "${jobs}" --resume --verify-replay=20 \
                   2> "${dir}.resume.err")"
        printf '%s\n' "${out}" > "${dir}.resume.out"
        cmp "${work}/ref.out" "${dir}.resume.out" || {
            echo "FAIL: recovered report differs from the reference" >&2
            exit 1
        }
        echo "    resume report byte-identical to the clean run"
    else
        if [ "${rc}" != 0 ]; then
            echo "FAIL: chaos run expected to survive, exit ${rc}" >&2
            exit 1
        fi
        cmp "${work}/ref.out" "${dir}.chaos.out" || {
            echo "FAIL: chaos-survivor report differs from reference" >&2
            exit 1
        }
        echo "    report byte-identical despite the schedule"
    fi
}

for jobs in ${jobs_list}; do
    # Mid-file corruption + death: short writes tear records, the kill
    # leaves the damage behind; the resume must quarantine the corrupt
    # records (storageFaults notice), heal the file, re-simulate only
    # the lost samples, and reproduce the report byte-for-byte.
    run_chaos corrupt-kill "${jobs}" \
        "journal.append.short_write=1/7,journal.append.kill=@$((kill_at * 2))" \
        0 1
    dir="${work}/corrupt-kill-j${jobs}"
    if ! grep -q "storageFaults=" "${dir}.resume.err"; then
        echo "FAIL: resume did not report quarantined corruption" >&2
        exit 1
    fi
    if ! ls "${dir}"/journal/*.corrupt > /dev/null 2>&1; then
        echo "FAIL: no .corrupt sidecar left as evidence" >&2
        exit 1
    fi
    echo "    corruption quarantined to a .corrupt sidecar and reported"

    if [ "${smoke}" = 1 ]; then
        continue
    fi

    # Pure kill-at-append: the torn tail is benign damage; resume must
    # not count storage faults.
    run_chaos kill "${jobs}" "journal.append.kill=@${kill_at}" 0 1
    if grep -q "storageFaults=" "${work}/kill-j${jobs}.resume.err"; then
        echo "FAIL: a benign torn tail was miscounted as corruption" >&2
        exit 1
    fi

    # EINTR storm on the fsync path: the run must survive with an
    # unchanged report, no resume needed.
    run_chaos eintr "${jobs}" "journal.fsync.eintr=1/3" 1 0
done

echo "=== chaos sweep passed (reports byte-identical, corruption quarantined)"
