#!/usr/bin/env bash
# Build and test under sanitizers (VSTACK_SANITIZE CMake option):
#
#   - address + undefined: full tier-1 test suite
#   - address: sandbox-isolation smoke + failpoint chaos smoke (the
#     storage recovery paths and one end-to-end CLI chaos schedule)
#     + checkpoint smoke (the snapshot/restore fast-forward path and
#     a verified CLI campaign) + suite smoke (the pooled multi-campaign
#     scheduler vs the serial path, byte for byte) + service smoke
#     (vstackd) + fault-model smoke (the pluggable sampler: single-bit
#     byte-identity, per-model determinism, kill + resume) + fleet
#     smoke (supervised worker processes, kill and resume experiments)
#   - thread: the campaign-executor tests (test_exec + the parallel
#     campaign determinism tests), i.e. everything that exercises the
#     worker pool in src/exec
#
# Usage: tools/ci_sanitize.sh [build-dir-prefix]
# Exits non-zero on the first sanitizer failure.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

build() {
    local san="$1" dir="$2"
    echo "=== configure + build [${san}] -> ${dir}"
    cmake -B "${dir}" -S . -DVSTACK_SANITIZE="${san}" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
    cmake --build "${dir}" -j "${jobs}" > /dev/null
}

for san in address undefined; do
    dir="${prefix}-${san}"
    build "${san}" "${dir}"
    echo "=== tier-1 tests [${san}]"
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
done

echo "=== isolation smoke [address]"
# Re-run the fork-based sandbox tests under ASan explicitly: leaked
# descriptors, double-frees in the fork/pipe supervisor, and
# use-after-free in the drain path all show up here.  (RLIMIT_AS is
# skipped in sanitizer builds — the shadow mappings dwarf any real
# ceiling — so the over-allocation test SKIPs itself; signal, deadline,
# and triage coverage still runs.)
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Sandbox|Isolated'

echo "=== chaos smoke [address]"
# The failpoint chaos harness under ASan: the recovery paths
# (quarantine, self-heal rewrite, torn-frame triage) shuffle buffers
# and rename files while children die mid-write — exactly where
# use-after-free and leaked-descriptor bugs would hide.  The ctest
# stage runs the executor-level chaos suite; the script runs one
# end-to-end kill-and-corrupt schedule through the real CLI.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Chaos'
tools/chaos_campaign.sh --smoke "${prefix}-address"

echo "=== checkpoint smoke [address]"
# The checkpoint accelerator under ASan: snapshot/restore shares COW
# memory pages across std::shared_ptr chains and splices golden-trace
# suffixes into early-terminated results — the classic habitat of
# use-after-free and off-by-one reads.  The ctest stage runs the
# restored-vs-cold and byte-identity suites; the CLI run exercises the
# end-to-end checkpointed path with a 100% cold verification audit, so
# every sample is simulated both ways under the sanitizer.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Checkpoint'
VSTACK_RESULTS= "${prefix}-address/tools/vstack" campaign sha \
    --core ax9 -n 24 --seed 7 --verify-checkpoint=100 > /dev/null

echo "=== fastpath smoke [address]"
# The fast path under ASan: predecoded dispatch reads a shared
# immutable table while the live RAM word is re-verified per step, and
# batched digesting reuses one staging buffer across probes — stale
# hints and buffer reuse are exactly where out-of-bounds reads would
# hide.  The ctest stage runs the lockstep fuzz + escape-hatch suites;
# perf_smoke.sh then proves byte-identity of the full campaign with
# the fast path on vs pinned off (ASSERT=0: instrumented timings
# don't model production ratios, identity still gates).
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'FastPath|Fastpath|Crc32c|Predecode'
ASSERT=0 REPS=1 FAULTS=48 BENCH_OUT="${prefix}-address" \
    tools/perf_smoke.sh "${prefix}-address"

echo "=== suite smoke [address]"
# The suite scheduler under ASan: one worker pool multiplexes
# prepare/sample/finalize steps of many campaigns, with per-run
# contexts, mid-flight resource release, and kill/resume children —
# where lifetime bugs between a finalized campaign and a worker still
# holding its context would surface.  The ctest stage runs the
# scheduler determinism suite; the script runs a cross-layer manifest
# through the real CLI both ways and diffs the stores byte for byte.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Suite'
tools/suite_smoke.sh --smoke "${prefix}-address"

echo "=== service smoke [address]"
# The campaign service under ASan: socket frames, per-connection
# threads, cancel tokens, and the persisted-job recovery path all
# shuffle buffers between threads while clients disconnect mid-stream
# — leaked fds and use-after-free on a vanished connection would
# surface here.  The ctest stage runs the daemon/admission suites
# in-process; the script drives two real clients against a real
# vstackd, arms the socket failpoints, and SIGKILLs + restarts it.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Service'
tools/vstackd_smoke.sh --smoke "${prefix}-address"

echo "=== fault-model smoke [address]"
# The pluggable fault-model path under ASan: the plugin tests first
# (sampling, store-key separation, journal identity), then the script
# proves the single-bit default is still byte-identical to the
# committed pre-refactor store, that every non-default model is
# deterministic across --jobs widths on two layers, and that an
# em-burst campaign survives SIGKILL + --resume byte-identically.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'FaultModel'
tools/faultmodel_smoke.sh --smoke "${prefix}-address"

echo "=== fleet smoke [address]"
# The worker fleet under ASan: the supervisor forks real vstack-worker
# processes, SIGKILLs them mid-lease, triages torn frames, and folds
# results from a poll loop — leaked socketpair fds, use-after-free on
# a revoked lease, and double-closes in the respawn path would all
# surface here.  The ctest stage runs the supervision suite (worker
# kill, hang, speculation, degradation, supervisor kill + resume); the
# script repeats the kill experiments against the real CLI and diffs
# the stores byte for byte.
ctest --test-dir "${prefix}-address" --output-on-failure -j "${jobs}" \
      -R 'Fleet'
tools/fleet_smoke.sh --smoke "${prefix}-address"

dir="${prefix}-thread"
build thread "${dir}"
echo "=== executor tests [thread]"
# The executor tests plus the campaign-level parallel determinism and
# resume tests are the code that actually runs multithreaded.  The
# filter deliberately excludes the Sandbox/Isolated fork tests plus
# the Chaos, Suite, Service, and Fleet suites (all fork failpoint-
# armed children): fork from a multithreaded TSan process is
# unsupported (all are covered by the ASan smoke stages above
# instead).
ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
      -R 'Executor|Journal|Parallel|Resume|Jobs' \
      -E 'Sandbox|Isolated|Chaos|Suite|Service|Fleet|FaultModel'

echo "=== all sanitizer runs passed"
