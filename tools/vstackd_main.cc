/**
 * @file
 * `vstackd` — the persistent campaign service (src/service/daemon.h).
 *
 *   vstackd [--socket P] [--queue N] [--inflight N] [--stall S]
 *           [--jobs J] [-n N] [--seed S]
 *
 * One daemon owns one warm VulnerabilityStack and serves `vstack
 * submit/status/cancel` clients over a local UNIX socket.  Campaign
 * configuration comes from the VSTACK_* environment exactly like the
 * one-shot CLI, with resume forced on so recovered jobs continue from
 * their journals.  SIGTERM/SIGINT drain gracefully (admitted jobs are
 * persisted for the next start); exit 0 means the drain was clean.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "exec/sandbox.h"
#include "service/daemon.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace
{

using namespace vstack;

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: vstackd [options]\n"
        "  --socket P    listen path (default $VSTACK_RESULTS/"
        "vstackd.sock)\n"
        "  --queue N     admitted-job queue cap before `rejected "
        "overloaded` (default 16)\n"
        "  --inflight N  jobs running concurrently (default 1)\n"
        "  --stall S     watchdog: fail a job after S seconds without "
        "progress (default 300)\n"
        "  --jobs J      worker threads per suite (0 = all hw "
        "threads)\n"
        "  -n N          samples per campaign (default: environment)\n"
        "  --seed S      campaign seed (default: environment)\n"
        "  --fleet N     run each job through N supervised worker\n"
        "                processes with crash recovery (default: "
        "in-process)\n");
    std::exit(2);
}

uint64_t
numValue(const char *flag, const std::string &v)
{
    size_t pos = 0;
    uint64_t n = 0;
    try {
        n = std::stoull(v, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (v.empty() || v[0] == '-' || pos != v.size())
        fatal("%s expects a non-negative integer, got '%s'", flag,
              v.c_str());
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    EnvConfig cfg = EnvConfig::fromEnvironment();
    // The daemon's whole point is resumability: journals from a killed
    // incarnation (or an interrupted one-shot run) always replay.
    cfg.resume = true;

    service::DaemonOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--socket")
            opts.socketPath = value();
        else if (flag == "--queue")
            opts.maxQueued = static_cast<size_t>(numValue("--queue",
                                                          value()));
        else if (flag == "--inflight")
            opts.maxInflight =
                static_cast<size_t>(numValue("--inflight", value()));
        else if (flag == "--stall")
            opts.stallTimeoutSec =
                static_cast<double>(numValue("--stall", value()));
        else if (flag == "--jobs")
            cfg.jobs = static_cast<unsigned>(numValue("--jobs", value()));
        else if (flag == "-n")
            cfg.uarchFaults = cfg.archFaults = cfg.swFaults =
                static_cast<size_t>(numValue("-n", value()));
        else if (flag == "--seed")
            cfg.seed = numValue("--seed", value());
        else if (flag == "--fleet")
            opts.fleetWorkers =
                static_cast<unsigned>(numValue("--fleet", value()));
        else
            usage();
    }
    if (opts.socketPath.empty()) {
        opts.socketPath =
            cfg.resultsDir.empty()
                ? strprintf("/tmp/vstackd-%d.sock",
                            static_cast<int>(getuid()))
                : cfg.resultsDir + "/vstackd.sock";
    }

    if (failpointsArmed())
        std::fprintf(stderr, "failpoints armed: %s\n",
                     failpointSummary().c_str());

    exec::installShutdownHandler();
    VulnerabilityStack stack(cfg);
    service::Daemon daemon(stack, opts);
    std::string err;
    if (!daemon.start(err))
        fatal("vstackd: %s", err.c_str());
    std::fprintf(stderr, "vstackd: listening on %s\n",
                 opts.socketPath.c_str());
    daemon.serve();
    std::fprintf(stderr, "vstackd: drained cleanly\n");
    return 0;
}
