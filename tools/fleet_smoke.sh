#!/usr/bin/env bash
# Fleet smoke: run a cross-layer suite through `vstack suite --fleet=N`
# (supervised worker processes with leases and crash recovery) and
# require the result to be byte-identical to the --serial reference —
# same stdout report, same ResultStore tree, bit for bit — under three
# regimes:
#
#   1. a clean fleet run;
#   2. a fleet run where a random vstack-worker is SIGKILLed mid-suite
#      (found via pgrep on the supervisor's children);
#   3. a fleet run whose *supervisor* is SIGKILLed mid-journal-append
#      (journal.append.kill failpoint), then finished with --resume.
#
# Full mode also times serial vs fleet cold (best of N) and emits
# BENCH_fleet.json.  No speedup is asserted — fleet pays per-process
# warm-up that only amortises on paper-scale campaigns; the contract
# here is identity, the ratio is recorded for trend lines.
#
# Usage: tools/fleet_smoke.sh [--smoke] [build-dir]
#   --smoke  3-campaign manifest, identity-only (CI-sized; no BENCH)
# Env: VSTACK_FAULTS (default 24), FLEET (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."
smoke=0
if [ "${1:-}" = "--smoke" ]; then
    smoke=1
    shift
fi
build="${1:-build}"
vstack="${build}/tools/vstack"
worker="${build}/tools/vstack-worker"
for bin in "${vstack}" "${worker}"; do
    if [ ! -x "${bin}" ]; then
        echo "error: ${bin} not built (cmake --build ${build})" >&2
        exit 1
    fi
done

work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT

faults="${VSTACK_FAULTS:-24}"
fleet="${FLEET:-3}"
reps=3
if [ "${smoke}" = 1 ]; then
    reps=1
fi
# One campaign per layer, sharing the fft golden (same slice the suite
# smoke uses — small enough for a sanitizer build).
cat > "${work}/manifest.json" <<'EOF'
{"campaigns": [
  {"layer": "pvf", "workload": "fft", "isa": "av64", "fpm": "WD"},
  {"layer": "svf", "workload": "fft"},
  {"layer": "uarch", "workload": "fft", "core": "ax72", "structure": "*"}
]}
EOF

# run_mode <name> <extra-flags...>: cold suite run into a fresh store;
# prints elapsed milliseconds.
run_mode() {
    local name="$1"
    shift
    rm -rf "${work}/${name}.store"
    local t0 t1
    t0=$(date +%s%N)
    VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/${name}.store" \
        "${vstack}" suite "${work}/manifest.json" "$@" \
        > "${work}/${name}.out" 2> "${work}/${name}.err"
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}

# assert_identical <name>: stdout + store must match the serial run.
assert_identical() {
    local name="$1"
    cmp "${work}/serial.out" "${work}/${name}.out" || {
        echo "FAIL: ${name} report differs from the serial run" >&2
        sed 's/^/    stderr: /' "${work}/${name}.err" >&2
        exit 1
    }
    diff -r "${work}/serial.store" "${work}/${name}.store" \
        > /dev/null || {
        echo "FAIL: ${name} ResultStore differs from serial" >&2
        exit 1
    }
}

echo "=== fleet smoke: faults=${faults} fleet=${fleet} reps=${reps}"

# --- reference + clean fleet run (timed in full mode) ----------------
serial_ms=""
fleet_ms=""
for rep in $(seq "${reps}"); do
    s=$(run_mode serial --serial --jobs 1)
    f=$(run_mode fleet --fleet="${fleet}")
    echo "    rep ${rep}: serial=${s}ms fleet=${f}ms"
    if [ -z "${serial_ms}" ] || [ "${s}" -lt "${serial_ms}" ]; then
        serial_ms="${s}"
    fi
    if [ -z "${fleet_ms}" ] || [ "${f}" -lt "${fleet_ms}" ]; then
        fleet_ms="${f}"
    fi
done
assert_identical fleet
echo "    clean fleet run byte-identical to serial"

# --- scenario: SIGKILL a random worker mid-suite ---------------------
rm -rf "${work}/wkill.store"
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/wkill.store" \
    "${vstack}" suite "${work}/manifest.json" --fleet="${fleet}" \
    > "${work}/wkill.out" 2> "${work}/wkill.err" &
sup=$!
killed=0
for _ in $(seq 400); do
    victim="$(pgrep -P "${sup}" -f vstack-worker | head -n 1 || true)"
    if [ -n "${victim}" ]; then
        kill -9 "${victim}" 2>/dev/null && killed=1 && break
    fi
    if ! kill -0 "${sup}" 2>/dev/null; then
        break
    fi
    sleep 0.02
done
wait "${sup}" || {
    echo "FAIL: supervisor died after a worker kill (rc=$?)" >&2
    sed 's/^/    stderr: /' "${work}/wkill.err" >&2
    exit 1
}
assert_identical wkill
if [ "${killed}" = 1 ]; then
    echo "    worker SIGKILL mid-suite recovered byte-identically"
else
    echo "    NOTE: suite finished before a worker could be killed" \
         "(host too fast for faults=${faults}); identity still held"
fi

# --- scenario: SIGKILL the supervisor, then --resume -----------------
rm -rf "${work}/skill.store"
rc=0
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/skill.store" \
    VSTACK_FAILPOINTS="journal.append.kill=@9" \
    "${vstack}" suite "${work}/manifest.json" --fleet="${fleet}" \
    > "${work}/skill.out" 2> "${work}/skill.err" || rc=$?
if [ "${rc}" -ne 137 ]; then
    echo "FAIL: expected the supervisor to die on SIGKILL (137)," \
         "got rc=${rc}" >&2
    exit 1
fi
VSTACK_FAULTS="${faults}" VSTACK_RESULTS="${work}/skill.store" \
    "${vstack}" suite "${work}/manifest.json" --fleet="${fleet}" \
    --resume > "${work}/skill.out" 2> "${work}/skill.err"
assert_identical skill
# Nothing may outlive the dead supervisor: CLOEXEC socketpairs give
# every orphan EOF once its in-flight sample finishes, so the worker
# table must drain to empty (bounded by one sample, generous here for
# sanitizer builds).
orphans=1
for _ in $(seq 50); do
    if ! pgrep -f "vstack-worker --fd" > /dev/null 2>&1; then
        orphans=0
        break
    fi
    sleep 0.2
done
if [ "${orphans}" = 1 ]; then
    echo "FAIL: orphaned vstack-worker processes after supervisor" \
         "SIGKILL" >&2
    exit 1
fi
echo "    supervisor SIGKILL + --resume byte-identical, no orphans"

if [ "${smoke}" = 1 ]; then
    echo "=== fleet smoke passed (byte-identity)"
    exit 0
fi

cpus="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
ratio="$(awk -v s="${serial_ms}" -v f="${fleet_ms}" \
             'BEGIN { printf "%.2f", s / f }')"
echo "    best-of-${reps}: serial=${serial_ms}ms fleet=${fleet_ms}ms" \
     "ratio=${ratio}x (${cpus} cpu(s))"
cat > BENCH_fleet.json <<EOF
{
  "bench": "fleet_supervisor",
  "campaigns": 3,
  "faults": ${faults},
  "fleet": ${fleet},
  "serial_ms": ${serial_ms},
  "fleet_ms": ${fleet_ms},
  "ratio": ${ratio},
  "cpus": ${cpus},
  "byte_identical": true,
  "worker_kill_recovered": true,
  "supervisor_kill_resumed": true
}
EOF
echo "=== fleet smoke passed (BENCH_fleet.json written)"
