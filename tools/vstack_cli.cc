/**
 * @file
 * `vstack` — command-line driver for the toolchain and injectors.
 *
 *   vstack workloads
 *       List the bundled MiBench-analog workloads.
 *   vstack compile <file.mcl|workload> [--isa av32|av64]
 *       Compile and print image statistics.
 *   vstack asm <file.mcl|workload> [--isa ...]
 *       Dump the generated assembly.
 *   vstack ir <file.mcl|workload> [--xlen 32|64] [--harden]
 *       Dump the (optionally hardened) IR.
 *   vstack run <file.mcl|workload> [--core ax72] [--functional]
 *       Execute on the cycle-level core (default) or the functional
 *       emulator and print the program output and run statistics.
 *   vstack campaign <file.mcl|workload> [--core ax72]
 *           [--structure RF|LSQ|L1i|L1d|L2] [-n N] [--seed S] [--harden]
 *           [--jobs J] [--resume] [--watchdog F] [--isolate]
 *       Run a microarchitectural injection campaign and print
 *       AVF/HVF/FPM results.
 *   vstack svf <file.mcl|workload> [-n N] [--seed S] [--harden]
 *           [--jobs J] [--resume] [--isolate]
 *       Run a software-level (LLFI-analog) campaign.
 *   vstack suite <manifest.json> [--jobs J] [--serial]
 *           [--deadline S] [...]
 *       Run every campaign named by a JSON manifest over one shared
 *       worker pool (golden runs included), memoised through
 *       $VSTACK_RESULTS.  The manifest is an object with a
 *       "campaigns" array; each entry names a layer plus its axes,
 *       with "*" expanding an axis over the paper's sweep:
 *
 *         {"campaigns": [
 *           {"layer": "uarch", "workload": "*", "core": "ax72",
 *            "structure": "*"},
 *           {"layer": "pvf", "workload": "fft", "isa": "av64",
 *            "fpm": "WD"},
 *           {"layer": "svf", "workload": "fft", "harden": true}]}
 *
 *       "workload": "*" expands over the paper's ten benchmarks,
 *       "structure": "*" over RF/LSQ/L1i/L1d/L2, and "fpm": "*" over
 *       WD/WI/WOI (ESC is invisible to arch-level injection by
 *       construction).  --serial runs the same plan through the
 *       serial per-campaign path (the reference the scheduler must
 *       match byte for byte); campaign reports on stdout are
 *       byte-identical either way, at any --jobs, and progress /
 *       cache diagnostics go to stderr.
 *
 * Sources may be a path to an .mcl file or the name of a bundled
 * workload.
 *
 * Campaigns run on `--jobs J` worker threads with bit-identical
 * results at any J (0 = all hardware threads).  Completed samples are
 * journaled under $VSTACK_RESULTS/journal/, so a killed campaign can
 * be re-invoked with `--resume` to simulate only the remainder.
 *
 * `--isolate` (or VSTACK_ISOLATE=1) forks each sample batch into a
 * supervised child under resource ceilings and a wall-clock deadline;
 * a sample that SIGSEGVs, over-allocates, or hangs the host is
 * quarantined as a HostFault triage record instead of killing the
 * campaign.  Ctrl-C (SIGINT/SIGTERM) drains gracefully: children are
 * reaped, the journal keeps every finished sample, and the campaign
 * is resumable with --resume.
 *
 *   vstack submit <manifest.json> [--socket P] [--client NAME]
 *           [--deadline S] [--harden]
 *   vstack status [--socket P]
 *   vstack cancel <job-id> [--socket P]
 *       Talk to a running `vstackd` campaign service (see
 *       src/service/daemon.h): submit streams progress and prints the
 *       result exactly like `vstack suite`; the client retries
 *       connect failures, overload sheds, and mid-stream disconnects
 *       with exponential backoff + jitter, and resubmission is
 *       idempotent (campaign identity is the result-store key).
 *
 * `--verify-replay=P` (or VSTACK_VERIFY_REPLAY=P) re-simulates a
 * deterministic P% of the samples replayed from the journal on a
 * --resume and exits with status 3 if any re-run disagrees with its
 * journaled record.  Corrupt journal/cache records found during
 * recovery are quarantined, counted, and reported as a
 * `storageFaults=` notice on stderr.
 */
#include <cstdio>
#include <cstring>

#include <unistd.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/archsim.h"
#include "compiler/compile.h"
#include "core/suite.h"
#include "exec/executor.h"
#include "ft/harden.h"
#include "gefin/campaign.h"
#include "kernel/kernel.h"
#include "service/client.h"
#include "service/fleet.h"
#include "fault/model.h"
#include "support/crc32c.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/fastpath.h"
#include "support/logging.h"
#include "swfi/svf.h"
#include "workloads/workloads.h"

namespace
{

using namespace vstack;
using namespace vstack::campaign_io;

struct Args
{
    std::string command;
    std::string target;
    std::string core = "ax72";
    std::string isa = "av64";
    std::string structure = "RF";
    size_t n = 200;
    uint64_t seed = 42;
    bool harden = false;
    bool functional = false;
    int xlen = 64;
    unsigned jobs = 1;
    bool resume = false;
    double watchdog = 4.0;
    bool isolate = false;
    double verifyReplay = 0.0;
    bool checkpoint = true;
    bool fastpath = true;
    double verifyCheckpoint = 0.0;
    bool serial = false;
    /** Canonical fault-model tag ("" = single-bit default); resolved
     *  from --fault-model / VSTACK_FAULT_MODEL at parse time. */
    std::string faultModel;
    unsigned fleet = 0;    ///< worker processes; 0 = in-process suite
    double deadline = 0.0; ///< seconds; 0 = none (suite/submit)
    std::string socket;    ///< vstackd socket ("" = default)
    std::string client;    ///< client name for fairness queues
    /** @name Explicit-flag markers, so `suite` can tell a CLI override
     *  from an Args default and fall back to the environment @{ */
    bool nGiven = false;
    bool seedGiven = false;
    bool jobsGiven = false;
    bool watchdogGiven = false;
    /** @} */
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: vstack <command> [target] [options]\n"
        "commands: workloads | compile | asm | ir | run | campaign | "
        "svf | suite | submit | status | cancel\n"
        "options: --isa av32|av64  --core ax9|ax15|ax57|ax72\n"
        "         --structure RF|LSQ|L1i|L1d|L2  -n N  --seed S\n"
        "         --harden  --functional  --xlen 32|64\n"
        "         --jobs J (0 = all hw threads)  --resume\n"
        "         --watchdog F (injection budget, x golden run, >= 1)\n"
        "         --isolate (sandbox each sample batch in a forked,\n"
        "                    resource-limited child)\n"
        "         --verify-replay=P (re-simulate P%% of journal-replayed\n"
        "                    samples; abort on any divergence)\n"
        "         --no-checkpoint (disable checkpoint fast-forward and\n"
        "                    golden-trace early termination)\n"
        "         --no-fastpath (disable predecoded dispatch, batched\n"
        "                    digest staging, and the hardware CRC32\n"
        "                    engine; results are byte-identical)\n"
        "         --verify-checkpoint=P (re-run P%% of checkpointed\n"
        "                    samples cold; abort on any divergence)\n"
        "         --fault-model M (campaign/svf/suite: single-bit |\n"
        "                    spatial-multibit:cluster=C,stride=S |\n"
        "                    sram-undervolt:vdd=V,banks=B,droop=D,asym=A |\n"
        "                    em-burst:window=W,flips=F,cross=0|1;\n"
        "                    default from VSTACK_FAULT_MODEL)\n"
        "         --serial (suite only: run campaigns one at a time\n"
        "                    through the serial reference path)\n"
        "         --fleet N (suite only: shard samples across N\n"
        "                    supervised worker processes with crash\n"
        "                    recovery; results stay byte-identical)\n"
        "         --deadline S (suite/submit: cancel after S seconds\n"
        "                    and report the partial results; suite\n"
        "                    exits 4 on expiry)\n"
        "         --socket P  --client NAME (vstackd client options)\n");
    std::exit(2);
}

uint64_t
numValue(const std::string &flag, const std::string &v)
{
    size_t pos = 0;
    uint64_t n = 0;
    try {
        n = std::stoull(v, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (v.empty() || v[0] == '-' || pos != v.size())
        fatal("%s expects a non-negative integer, got '%s'", flag.c_str(),
              v.c_str());
    return n;
}

double
doubleValue(const std::string &flag, const std::string &v)
{
    size_t pos = 0;
    double d = 0.0;
    try {
        d = std::stod(v, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (v.empty() || pos != v.size() || d < 0.0)
        fatal("%s expects a non-negative number, got '%s'", flag.c_str(),
              v.c_str());
    return d;
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    bool verifyReplayGiven = false;
    bool verifyCheckpointGiven = false;
    if (argc < 2)
        usage();
    a.command = argv[1];
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        a.target = argv[i++];
    for (; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        // --verify-replay takes its percentage in either form
        // (--verify-replay=10 or --verify-replay 10).
        if (flag.rfind("--verify-replay", 0) == 0) {
            std::string v;
            if (flag.size() > 15 && flag[15] == '=')
                v = flag.substr(16);
            else if (flag.size() == 15)
                v = value();
            else
                usage();
            a.verifyReplay = doubleValue("--verify-replay", v);
            verifyReplayGiven = true;
            continue;
        }
        // --verify-checkpoint likewise (either =P or a separate arg).
        if (flag.rfind("--verify-checkpoint", 0) == 0) {
            std::string v;
            if (flag.size() > 19 && flag[19] == '=')
                v = flag.substr(20);
            else if (flag.size() == 19)
                v = value();
            else
                usage();
            a.verifyCheckpoint = doubleValue("--verify-checkpoint", v);
            verifyCheckpointGiven = true;
            continue;
        }
        if (flag.rfind("--fleet", 0) == 0) {
            std::string v;
            if (flag.size() > 7 && flag[7] == '=')
                v = flag.substr(8);
            else if (flag.size() == 7)
                v = value();
            else
                usage();
            a.fleet = static_cast<unsigned>(numValue("--fleet", v));
            if (a.fleet == 0)
                fatal("--fleet expects a worker count >= 1");
            continue;
        }
        if (flag.rfind("--deadline", 0) == 0) {
            std::string v;
            if (flag.size() > 10 && flag[10] == '=')
                v = flag.substr(11);
            else if (flag.size() == 10)
                v = value();
            else
                usage();
            a.deadline = doubleValue("--deadline", v);
            continue;
        }
        if (flag == "--isa")
            a.isa = value();
        else if (flag == "--core")
            a.core = value();
        else if (flag == "--structure")
            a.structure = value();
        else if (flag == "-n") {
            a.n = static_cast<size_t>(numValue(flag, value()));
            a.nGiven = true;
        } else if (flag == "--seed") {
            a.seed = numValue(flag, value());
            a.seedGiven = true;
        } else if (flag == "--xlen")
            a.xlen = static_cast<int>(numValue(flag, value()));
        else if (flag == "--jobs") {
            a.jobs = static_cast<unsigned>(numValue(flag, value()));
            a.jobsGiven = true;
        } else if (flag == "--watchdog") {
            a.watchdog = doubleValue(flag, value());
            a.watchdogGiven = true;
        } else if (flag == "--serial")
            a.serial = true;
        else if (flag == "--isolate")
            a.isolate = true;
        else if (flag == "--no-checkpoint")
            a.checkpoint = false;
        else if (flag == "--no-fastpath")
            a.fastpath = false;
        else if (flag == "--resume")
            a.resume = true;
        else if (flag == "--fault-model")
            a.faultModel = value();
        else if (flag == "--socket")
            a.socket = value();
        else if (flag == "--client")
            a.client = value();
        else if (flag == "--harden")
            a.harden = true;
        else if (flag == "--functional")
            a.functional = true;
        else
            usage();
    }
    // Validate at parse time: a watchdog factor below 1.0 would
    // classify even the golden runtime as a hang.
    if (a.watchdog < 1.0)
        fatal("--watchdog factor must be >= 1.0, got %g", a.watchdog);
    // --fault-model falls back to VSTACK_FAULT_MODEL; either spelling
    // is validated here and canonicalized, so every store key and
    // journal header downstream sees the canonical tag.
    if (a.faultModel.empty())
        a.faultModel = envString("VSTACK_FAULT_MODEL", "");
    if (!a.faultModel.empty()) {
        std::string err;
        auto m = fault::parseFaultModel(a.faultModel, err);
        if (!m)
            fatal("--fault-model: %s", err.c_str());
        a.faultModel = m->tag();
    }
    // VSTACK_ISOLATE complements --isolate (strictly validated: a
    // garbage value is a fatal error, not a silent non-sandbox run).
    if (envFlagStrict("VSTACK_ISOLATE"))
        a.isolate = true;
    if (!verifyReplayGiven)
        a.verifyReplay =
            envDoubleStrict("VSTACK_VERIFY_REPLAY", 0.0, 0.0);
    if (a.verifyReplay > 100.0)
        fatal("--verify-replay must be a percentage in [0, 100], got %g",
              a.verifyReplay);
    // VSTACK_CHECKPOINT=0 complements --no-checkpoint; the flag wins
    // when both are given (it can only disable).
    if (!envFlagStrict("VSTACK_CHECKPOINT", true))
        a.checkpoint = false;
    // VSTACK_FASTPATH=0 likewise complements --no-fastpath.  Pin the
    // process-global switch here, before any simulator exists, so the
    // CRC engine and every predecode decision see one answer.
    if (!envFlagStrict("VSTACK_FASTPATH", true))
        a.fastpath = false;
    setFastPathEnabled(a.fastpath);
    if (!verifyCheckpointGiven)
        a.verifyCheckpoint =
            envDoubleStrict("VSTACK_VERIFY_CHECKPOINT", 0.0, 0.0);
    if (a.verifyCheckpoint > 100.0)
        fatal("--verify-checkpoint must be a percentage in [0, 100], "
              "got %g",
              a.verifyCheckpoint);
    return a;
}

std::string
loadSource(const std::string &target)
{
    // A bundled workload name wins; otherwise read the file.
    for (const Workload &w : allWorkloads()) {
        if (w.name == target)
            return w.source;
    }
    std::ifstream in(target);
    if (!in)
        fatal("no bundled workload or readable file named '%s'",
              target.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

Structure
parseStructure(const std::string &name)
{
    for (Structure s : allStructures) {
        if (name == structureName(s))
            return s;
    }
    fatal("unknown structure '%s'", name.c_str());
}

ir::Module
buildIr(const Args &a, const std::string &src, int xlen)
{
    mcl::FrontendResult fr = mcl::compileToIr(src, xlen);
    if (!fr.ok)
        fatal("%s", fr.error.c_str());
    if (a.harden)
        return hardenModule(fr.module, defaultHardenOptions());
    return std::move(fr.module);
}

Program
buildSystem(const Args &a, const std::string &src, IsaId isa)
{
    ir::Module m = buildIr(a, src, IsaSpec::get(isa).xlen);
    mcl::BuildResult b = mcl::buildUserFromIr(m, isa);
    if (!b.ok)
        fatal("%s", b.error.c_str());
    return buildSystemImage(buildKernel(isa), b.program);
}

int
cmdWorkloads()
{
    std::printf("%-10s %-8s %s\n", "name", "domain", "source bytes");
    for (const Workload &w : allWorkloads()) {
        std::printf("%-10s %-8s %zu\n", w.name.c_str(),
                    w.domain.c_str(), w.source.size());
    }
    return 0;
}

int
cmdCompile(const Args &a)
{
    const IsaId isa = isaFromName(a.isa);
    const std::string src = loadSource(a.target);
    mcl::BuildResult b = mcl::buildUserProgram(src, isa);
    if (!b.ok)
        fatal("%s", b.error.c_str());
    std::printf("target          %s\n", a.isa.c_str());
    std::printf("image bytes     %zu\n", b.program.totalBytes());
    std::printf("entry           0x%08x\n", b.program.entry);
    std::printf("symbols         %zu\n", b.program.symbols.size());
    size_t irInsts = 0;
    for (const ir::Func &f : b.ir.funcs)
        irInsts += ir::instCount(f);
    std::printf("IR functions    %zu (%zu instructions)\n",
                b.ir.funcs.size(), irInsts);
    return 0;
}

int
cmdAsm(const Args &a)
{
    const IsaId isa = isaFromName(a.isa);
    mcl::BuildResult b = mcl::buildUserProgram(loadSource(a.target), isa);
    if (!b.ok)
        fatal("%s", b.error.c_str());
    std::fputs(b.asmText.c_str(), stdout);
    return 0;
}

int
cmdIr(const Args &a)
{
    ir::Module m = buildIr(a, loadSource(a.target), a.xlen);
    std::fputs(ir::print(m).c_str(), stdout);
    return 0;
}

int
cmdRun(const Args &a)
{
    const CoreConfig &core = coreByName(a.core);
    Program sys = buildSystem(a, loadSource(a.target), core.isa);

    if (a.functional) {
        ArchConfig cfg;
        cfg.isa = core.isa;
        ArchSim sim(cfg);
        sim.load(sys);
        ArchRunResult r = sim.run();
        std::fwrite(r.output.dma.data(), 1, r.output.dma.size(), stdout);
        std::printf("\n-- functional: %llu instructions (%.1f%% kernel), "
                    "exit %u, stop=%d\n",
                    static_cast<unsigned long long>(r.instCount),
                    100.0 * static_cast<double>(r.kernelInsts) /
                        std::max<uint64_t>(r.instCount, 1),
                    r.output.exitCode, static_cast<int>(r.stop));
        return r.stop == StopReason::Exited ? 0 : 1;
    }

    CycleSim sim(core);
    sim.load(sys);
    UarchRunResult r = sim.run(1'000'000'000);
    std::fwrite(r.output.dma.data(), 1, r.output.dma.size(), stdout);
    std::printf("\n-- %s: %llu cycles, %llu insts (IPC %.2f), "
                "%.1f%% kernel time, exit %u\n",
                a.core.c_str(), static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.insts), r.ipc(),
                100.0 * static_cast<double>(r.kernelCycles) /
                    std::max<uint64_t>(r.cycles, 1),
                r.output.exitCode);
    if (r.stop != StopReason::Exited) {
        std::printf("-- abnormal stop: %s\n", r.excMsg.c_str());
        return 1;
    }
    return 0;
}

/** Live progress line on stderr, cleared when the campaign ends. */
struct ProgressLine
{
    void operator()(size_t done, size_t total) const
    {
        std::fprintf(stderr, "\r%zu/%zu (%zu%%)", done, total,
                     total ? done * 100 / total : 100);
        std::fflush(stderr);
    }
    ~ProgressLine()
    {
        std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    }
};

/** Checkpoint accelerator policy for a CLI campaign: on by default,
 *  disabled by --no-checkpoint / VSTACK_CHECKPOINT=0, audited by
 *  --verify-checkpoint / VSTACK_VERIFY_CHECKPOINT. */
exec::CheckpointPolicy
cliCheckpointPolicy(const Args &a)
{
    exec::CheckpointPolicy p;
    p.enabled = a.checkpoint;
    p.checkpoints = static_cast<unsigned>(
        envIntStrict("VSTACK_CHECKPOINTS", 16, 1));
    p.earlyStop = a.checkpoint;
    p.verifyPercent = a.verifyCheckpoint;
    p.densify(a.fastpath);
    return p;
}

/** The parsed --fault-model (null = single-bit default) plus the key
 *  tag it contributes: "/fm:<tag>" for non-default models only, so
 *  default CLI campaign keys and journals keep their historical
 *  bytes. */
std::shared_ptr<const fault::FaultModel>
cliFaultModel(const Args &a)
{
    if (a.faultModel.empty() || a.faultModel == "single-bit")
        return nullptr;
    std::string err;
    auto m = fault::parseFaultModel(a.faultModel, err);
    if (!m) // parseArgs already validated; only a programming error
        fatal("--fault-model: %s", err.c_str());
    return m;
}

std::string
cliFmKeySuffix(const Args &a)
{
    return (a.faultModel.empty() || a.faultModel == "single-bit")
               ? std::string()
               : "/fm:" + a.faultModel;
}

/**
 * Execution policy for a CLI campaign: worker threads from --jobs, a
 * live progress line, and a resume journal under $VSTACK_RESULTS
 * keyed by everything that shapes the fault list.
 */
exec::ExecConfig
cliExecPolicy(const Args &a, const std::string &key, exec::Journal &journal,
              const ProgressLine &progress)
{
    exec::ExecConfig ec;
    ec.jobs = a.jobs;
    ec.isolate = a.isolate;
    ec.verifyReplay = a.verifyReplay;
    ec.progress = std::cref(progress);
    journal.setFsync(envFlagStrict("VSTACK_JOURNAL_FSYNC"));
    const std::string dir = envString("VSTACK_RESULTS", "results");
    const std::string fm =
        a.faultModel == "single-bit" ? std::string() : a.faultModel;
    if (!dir.empty() &&
        journal.open(exec::Journal::pathFor(dir, key), key, a.n, a.seed,
                     a.resume, fm))
        ec.journal = &journal;
    else if (a.resume)
        warn("no journal available; --resume starts from scratch");
    return ec;
}

/**
 * Surface quarantined-corruption counts on stderr.  Deliberately not
 * stdout: campaign reports must stay byte-identical between a clean
 * run and a recovered one, which is exactly what the chaos harness
 * compares with cmp(1).
 */
void
reportStorageFaults(const exec::Journal &journal)
{
    if (journal.storageFaults()) {
        std::fprintf(stderr,
                     "storageFaults=%zu corrupt journal record(s) "
                     "quarantined to the .corrupt sidecar; lost samples "
                     "were re-simulated\n",
                     journal.storageFaults());
    }
}

/**
 * Graceful-interrupt epilogue shared by the campaign commands: when a
 * SIGINT/SIGTERM drained the run, every finished sample is already in
 * the journal, so keep the file, tell the user how to continue, and
 * exit with the conventional interrupted status.
 */
bool
interrupted(const std::string &command)
{
    if (!exec::shutdownRequested())
        return false;
    std::fprintf(stderr,
                 "interrupted: finished samples are journaled; re-run "
                 "`vstack %s ... --resume` to continue\n",
                 command.c_str());
    return true;
}

int
cmdCampaign(const Args &a)
{
    exec::installShutdownHandler();
    const CoreConfig &core = coreByName(a.core);
    const Structure s = parseStructure(a.structure);
    Program sys = buildSystem(a, loadSource(a.target), core.isa);
    UarchCampaign campaign(core, sys);
    campaign.setWatchdog({a.watchdog, 50'000});
    campaign.setCheckpointPolicy(cliCheckpointPolicy(a));
    std::printf("golden: %llu cycles, %llu insts\n",
                static_cast<unsigned long long>(campaign.golden().cycles),
                static_cast<unsigned long long>(campaign.golden().insts));

    UarchCampaignResult r;
    exec::Journal journal;
    {
        const std::string key = strprintf(
            "cli-campaign/%s/%s/%s%s/n%zu/seed%llu%s", a.target.c_str(),
            a.core.c_str(), structureName(s), a.harden ? "/ft" : "", a.n,
            static_cast<unsigned long long>(a.seed),
            cliFmKeySuffix(a).c_str());
        ProgressLine progress;
        auto model = cliFaultModel(a);
        r = campaign.run(s, a.n, a.seed,
                         cliExecPolicy(a, key, journal, progress),
                         model.get());
    }
    reportStorageFaults(journal);
    if (interrupted("campaign"))
        return 130;
    journal.removeFile();

    std::printf("%s on %s, %zu faults (seed %llu):\n", structureName(s),
                a.core.c_str(), a.n,
                static_cast<unsigned long long>(a.seed));
    std::printf("  masked=%llu sdc=%llu crash=%llu detected=%llu\n",
                static_cast<unsigned long long>(r.outcomes.masked),
                static_cast<unsigned long long>(r.outcomes.sdc),
                static_cast<unsigned long long>(r.outcomes.crash),
                static_cast<unsigned long long>(r.outcomes.detected));
    if (r.outcomes.injectorErrors)
        std::printf("  injectorErrors=%llu (quarantined, excluded from "
                    "AVF)\n",
                    static_cast<unsigned long long>(
                        r.outcomes.injectorErrors));
    std::printf("  AVF %.2f%%  HVF %.2f%%  FPM: WD=%llu WI=%llu "
                "WOI=%llu ESC=%llu\n",
                r.avf() * 100, r.hvf() * 100,
                static_cast<unsigned long long>(r.fpms.wd),
                static_cast<unsigned long long>(r.fpms.wi),
                static_cast<unsigned long long>(r.fpms.woi),
                static_cast<unsigned long long>(r.fpms.esc));
    return 0;
}

int
cmdSvf(const Args &a)
{
    exec::installShutdownHandler();
    ir::Module m = buildIr(a, loadSource(a.target), 64);
    SvfCampaign campaign(m);
    campaign.setWatchdog({a.watchdog, 100'000});
    campaign.setCheckpointPolicy(cliCheckpointPolicy(a));

    OutcomeCounts c;
    exec::Journal journal;
    {
        const std::string key = strprintf(
            "cli-svf/%s%s/n%zu/seed%llu%s", a.target.c_str(),
            a.harden ? "/ft" : "", a.n,
            static_cast<unsigned long long>(a.seed),
            cliFmKeySuffix(a).c_str());
        ProgressLine progress;
        auto model = cliFaultModel(a);
        c = campaign.run(a.n, a.seed,
                         cliExecPolicy(a, key, journal, progress),
                         model.get());
    }
    reportStorageFaults(journal);
    if (interrupted("svf"))
        return 130;
    journal.removeFile();

    std::printf("SVF, %zu faults: masked=%llu sdc=%llu crash=%llu "
                "detected=%llu -> %.2f%% vulnerable\n",
                a.n, static_cast<unsigned long long>(c.masked),
                static_cast<unsigned long long>(c.sdc),
                static_cast<unsigned long long>(c.crash),
                static_cast<unsigned long long>(c.detected),
                c.vulnerability() * 100);
    if (c.injectorErrors)
        std::printf("  injectorErrors=%llu (quarantined, excluded)\n",
                    static_cast<unsigned long long>(c.injectorErrors));
    return 0;
}

/**
 * The suite's campaign configuration: the environment's, with every
 * explicitly given CLI flag overriding its variable.  Sample counts
 * and the seed resolve exactly like the serial entry points, so suite
 * store keys match serial store keys byte for byte.
 */
EnvConfig
suiteConfig(const Args &a)
{
    EnvConfig cfg = EnvConfig::fromEnvironment();
    if (a.jobsGiven)
        cfg.jobs = a.jobs;
    if (a.nGiven)
        cfg.uarchFaults = cfg.archFaults = cfg.swFaults = a.n;
    if (a.seedGiven)
        cfg.seed = a.seed;
    if (a.watchdogGiven)
        cfg.watchdogFactor = a.watchdog;
    if (a.isolate)
        cfg.isolate = true;
    if (a.resume)
        cfg.resume = true;
    if (!a.checkpoint)
        cfg.checkpoint = false;
    if (!a.fastpath)
        cfg.fastpath = false;
    // parseArgs already folded the VSTACK_* fallbacks into these.
    cfg.verifyReplay = a.verifyReplay;
    cfg.verifyCheckpoint = a.verifyCheckpoint;
    // Already canonical (parseArgs validated either spelling).
    cfg.faultModel = a.faultModel;
    return cfg;
}

/** Aggregated multi-campaign progress/ETA line on stderr, cleared on
 *  scope exit so campaign reports stay clean. */
struct SuiteProgressLine
{
    void operator()(const SuiteProgress &p) const
    {
        std::fprintf(stderr, "\r%zu/%zu campaigns  %zu/%zu samples",
                     p.campaignsDone, p.campaignsTotal, p.samplesDone,
                     p.samplesTotal);
        if (p.samplesPerSec > 0.0) {
            std::fprintf(stderr, "  %.0f/s", p.samplesPerSec);
            if (p.samplesDone < p.samplesTotal)
                std::fprintf(stderr, "  eta %.0fs",
                             static_cast<double>(p.samplesTotal -
                                                 p.samplesDone) /
                                 p.samplesPerSec);
        }
        std::fprintf(stderr, "\033[K");
        std::fflush(stderr);
    }
    ~SuiteProgressLine()
    {
        std::fprintf(stderr, "\r\033[K");
        std::fflush(stderr);
    }
};

/** One campaign's report line (stdout; byte-identical between serial
 *  and scheduled runs — the suite smoke test compares with cmp, and
 *  the vstackd client prints the same bytes from the result frame). */
void
printOutcomeLine(const std::string &label, const CampaignOutcome &o)
{
    if (o.spec.layer == CampaignLayer::Uarch) {
        const UarchCampaignResult &r = o.uarch;
        std::printf("%s: masked=%llu sdc=%llu crash=%llu detected=%llu "
                    "AVF=%.2f%% HVF=%.2f%% FPM: WD=%llu WI=%llu "
                    "WOI=%llu ESC=%llu\n",
                    label.c_str(),
                    static_cast<unsigned long long>(r.outcomes.masked),
                    static_cast<unsigned long long>(r.outcomes.sdc),
                    static_cast<unsigned long long>(r.outcomes.crash),
                    static_cast<unsigned long long>(r.outcomes.detected),
                    r.avf() * 100, r.hvf() * 100,
                    static_cast<unsigned long long>(r.fpms.wd),
                    static_cast<unsigned long long>(r.fpms.wi),
                    static_cast<unsigned long long>(r.fpms.woi),
                    static_cast<unsigned long long>(r.fpms.esc));
        if (r.outcomes.injectorErrors)
            std::printf("  injectorErrors=%llu (quarantined, excluded)\n",
                        static_cast<unsigned long long>(
                            r.outcomes.injectorErrors));
    } else {
        const OutcomeCounts &c = o.counts;
        std::printf("%s: masked=%llu sdc=%llu crash=%llu detected=%llu "
                    "-> %.2f%% vulnerable\n",
                    label.c_str(),
                    static_cast<unsigned long long>(c.masked),
                    static_cast<unsigned long long>(c.sdc),
                    static_cast<unsigned long long>(c.crash),
                    static_cast<unsigned long long>(c.detected),
                    c.vulnerability() * 100);
        if (c.injectorErrors)
            std::printf("  injectorErrors=%llu (quarantined, excluded)\n",
                        static_cast<unsigned long long>(
                            c.injectorErrors));
    }
}

void
printOutcome(const CampaignOutcome &o)
{
    printOutcomeLine(o.spec.label(), o);
}

int
cmdSuite(const Args &a)
{
    exec::installShutdownHandler();
    std::string text;
    if (!readFile(a.target, text))
        fatal("cannot read suite manifest '%s'", a.target.c_str());
    std::string err;
    const Json m = Json::parse(text, &err);
    if (!err.empty())
        fatal("suite manifest %s: %s", a.target.c_str(), err.c_str());
    CampaignPlan plan;
    if (!planFromManifest(m, a.harden, plan, err))
        fatal("%s: %s", a.target.c_str(), err.c_str());

    VulnerabilityStack stack(suiteConfig(a));
    exec::CancelToken deadline;
    if (a.deadline > 0)
        deadline.setDeadlineAfter(a.deadline);
    SuiteReport report;
    service::FleetStats fleetStats;
    {
        SuiteOptions opts;
        opts.serial = a.serial;
        if (a.deadline > 0)
            opts.cancel = &deadline;
        SuiteProgressLine line;
        opts.progress = std::cref(line);
        if (a.fleet > 0) {
            service::FleetOptions fopts;
            fopts.workers = a.fleet;
            report = service::runFleetSuite(stack, plan, opts, fopts,
                                            &fleetStats);
        } else {
            report = runSuite(stack, plan, opts);
        }
    }

    std::printf("suite: %zu campaigns\n", plan.size());
    for (const CampaignOutcome &o : report.outcomes) {
        if (o.complete)
            printOutcome(o);
        else if (!o.error.empty())
            std::printf("%s: FAILED: %s\n", o.spec.label().c_str(),
                        o.error.c_str());
    }
    if (report.failures) {
        std::fprintf(stderr,
                     "suite: %zu campaign(s) failed and were skipped; "
                     "the rest completed\n",
                     report.failures);
    }

    if (report.storageFaults) {
        std::fprintf(stderr,
                     "storageFaults=%llu corrupt storage record(s) "
                     "quarantined to .corrupt sidecars; lost samples "
                     "were re-simulated\n",
                     static_cast<unsigned long long>(
                         report.storageFaults));
    }
    if (a.fleet > 0) {
        // stderr only: stdout stays byte-comparable with the serial
        // and scheduled paths (the fleet smoke test uses cmp).
        std::fprintf(stderr,
                     "fleet: %u worker(s), %u spawn(s), %u death(s), "
                     "%u hang kill(s), %u torn frame(s), %u lease(s) "
                     "(%u speculative), %zu quarantine(s)%s\n",
                     a.fleet, fleetStats.spawns, fleetStats.deaths,
                     fleetStats.hangKills, fleetStats.tornFrames,
                     fleetStats.leases, fleetStats.speculativeLeases,
                     fleetStats.hostFaultQuarantines,
                     fleetStats.degraded
                         ? "; DEGRADED to one in-process executor"
                         : "");
    }
    if (report.cacheHits || report.goldenEvictions) {
        std::fprintf(stderr,
                     "suite: %zu cache hit(s), %llu golden "
                     "eviction(s)\n",
                     report.cacheHits,
                     static_cast<unsigned long long>(
                         report.goldenEvictions));
    }
    if (report.interrupted) {
        if (deadline.deadlineExpired()) {
            std::fprintf(stderr,
                         "deadline: %gs budget expired; the partial "
                         "report above is journaled — re-run with "
                         "--resume (or a larger --deadline) to "
                         "continue\n",
                         a.deadline);
            return 4;
        }
        std::fprintf(stderr,
                     "interrupted: finished samples are journaled; "
                     "re-run `vstack suite %s` to continue\n",
                     a.target.c_str());
        return 130;
    }
    return 0;
}

/** The default vstackd socket: beside the results (shared cache), or
 *  a per-user /tmp path when VSTACK_RESULTS is unset. */
std::string
defaultSocket()
{
    const EnvConfig cfg = EnvConfig::fromEnvironment();
    if (!cfg.resultsDir.empty())
        return cfg.resultsDir + "/vstackd.sock";
    return strprintf("/tmp/vstackd-%d.sock",
                     static_cast<int>(getuid()));
}

service::ClientOptions
clientOptions(const Args &a)
{
    service::ClientOptions o;
    o.socketPath = a.socket.empty() ? defaultSocket() : a.socket;
    o.name = a.client.empty()
                 ? strprintf("cli-%d", static_cast<int>(getpid()))
                 : a.client;
    // VSTACK_SEED pins the backoff jitter for deterministic
    // reconnect-storm tests; without it each process jitters freely.
    o.seed = service::clientJitterSeed(
        0, static_cast<uint64_t>(getpid()));
    return o;
}

/** Print a daemon result frame exactly like `vstack suite` prints its
 *  report (the formats share one codec, so outputs stay cmp-able). */
int
printResultFrame(const Json &res)
{
    const Json &outcomes = res.at("outcomes");
    std::printf("suite: %zu campaigns\n", outcomes.size());
    for (const Json &e : outcomes.items()) {
        const std::string label = e.at("label").asString();
        if (e.at("complete").asBool()) {
            CampaignOutcome o;
            // Reconstruct just enough of the outcome for the shared
            // printer: the label encodes the layer.
            if (label.rfind("uarch/", 0) == 0) {
                o.spec.layer = CampaignLayer::Uarch;
                o.uarch = uarchFromJson(e.at("data"));
            } else {
                o.spec.layer = label.rfind("pvf/", 0) == 0
                                   ? CampaignLayer::Pvf
                                   : CampaignLayer::Svf;
                o.counts = countsFromJson(e.at("data"));
            }
            printOutcomeLine(label, o);
        } else if (e.has("error")) {
            std::printf("%s: FAILED: %s\n", label.c_str(),
                        e.at("error").asString().c_str());
        }
    }
    if (res.at("interrupted").asBool()) {
        std::fprintf(stderr, "interrupted: %s\n",
                     res.has("cancelReason")
                         ? res.at("cancelReason").asString().c_str()
                         : "partial report");
        return res.has("cancelReason") &&
                       res.at("cancelReason").asString() == "deadline"
                   ? 4
                   : 130;
    }
    return 0;
}

int
cmdSubmit(const Args &a)
{
    std::string text;
    if (!readFile(a.target, text))
        fatal("cannot read suite manifest '%s'", a.target.c_str());
    std::string err;
    const Json m = Json::parse(text, &err);
    if (!err.empty())
        fatal("suite manifest %s: %s", a.target.c_str(), err.c_str());

    service::Client client(clientOptions(a));
    SuiteProgressLine line;
    const Json res = client.submit(
        m, a.harden, a.deadline,
        [&line](const Json &p) {
            SuiteProgress sp;
            sp.campaignsDone =
                static_cast<size_t>(p.at("campaignsDone").asInt());
            sp.campaignsTotal =
                static_cast<size_t>(p.at("campaignsTotal").asInt());
            sp.samplesDone =
                static_cast<size_t>(p.at("samplesDone").asInt());
            sp.samplesTotal =
                static_cast<size_t>(p.at("samplesTotal").asInt());
            line(sp);
        },
        err);
    if (!err.empty())
        fatal("%s", err.c_str());
    const std::string ev =
        res.isObject() && res.has("ev") ? res.at("ev").asString() : "";
    if (ev != "result") {
        // Structured rejections carry the human-readable cause in
        // "detail" (e.g. rejected bad-manifest).
        const std::string why =
            res.has("detail")   ? res.at("detail").asString()
            : res.has("reason") ? res.at("reason").asString()
                                : "unexpected reply";
        fatal("vstackd %s: %s", ev.c_str(), why.c_str());
    }
    return printResultFrame(res);
}

int
cmdStatus(const Args &a)
{
    service::Client client(clientOptions(a));
    std::string err;
    const Json st = client.status(err);
    if (!err.empty())
        fatal("%s", err.c_str());
    std::printf("%s\n", st.dump(2).c_str());
    return 0;
}

int
cmdCancel(const Args &a)
{
    service::Client client(clientOptions(a));
    std::string err;
    const Json res = client.cancel(a.target, err);
    if (!err.empty())
        fatal("%s", err.c_str());
    if (!res.at("found").asBool()) {
        std::fprintf(stderr, "no queued or running job '%s'\n",
                     a.target.c_str());
        return 1;
    }
    std::printf("cancelled %s\n", a.target.c_str());
    return 0;
}

int
dispatch(const Args &a)
{
    if (a.command == "compile")
        return cmdCompile(a);
    if (a.command == "asm")
        return cmdAsm(a);
    if (a.command == "ir")
        return cmdIr(a);
    if (a.command == "run")
        return cmdRun(a);
    if (a.command == "campaign")
        return cmdCampaign(a);
    if (a.command == "svf")
        return cmdSvf(a);
    if (a.command == "suite")
        return cmdSuite(a);
    if (a.command == "submit")
        return cmdSubmit(a);
    if (a.command == "status")
        return cmdStatus(a);
    if (a.command == "cancel")
        return cmdCancel(a);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);
    // Startup self-check: every compiled-in CRC-32C engine (hardware
    // included, when the CPU has it) must agree with the bitwise
    // reference on a fixed vector set before any digest is trusted.
    // A disagreeing engine would silently corrupt every golden-trace
    // compare, so this is fatal, not a fallback.
    if (const char *bad = crc32cSelfCheck())
        fatal("CRC-32C engine self-check failed: '%s' disagrees with "
              "the reference implementation",
              bad);
    // Make a chaos run unmistakable in logs: nobody should puzzle over
    // "why did this campaign see storage faults" when the faults were
    // injected on purpose.
    if (failpointsArmed())
        std::fprintf(stderr, "failpoints armed: %s\n",
                     failpointSummary().c_str());
    if (a.command == "workloads")
        return cmdWorkloads();
    if (a.target.empty() && a.command != "status")
        usage();
    try {
        return dispatch(a);
    } catch (const ReplayDivergence &e) {
        // The journal does not describe this campaign (corruption the
        // checksums cannot see, changed simulator code, or lost
        // determinism): refuse to emit numbers built on it.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    } catch (const CheckpointDivergence &e) {
        // An accelerated sample disagreed with its cold reference run:
        // the checkpoint path is unsound for this build, so refuse to
        // emit numbers built on it (same contract as replay audits).
        std::fprintf(stderr, "error: %s\n", e.what());
        return 3;
    } catch (const SimError &e) {
        // Golden-run or image failures surface as one clean line
        // instead of an abort (per-sample errors are contained and
        // quarantined by the executor, so they never reach here).
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
