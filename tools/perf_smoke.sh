#!/usr/bin/env bash
# Checkpoint-accelerator performance smoke: assert that the
# accelerated campaign path is (a) byte-identical to the cold path and
# (b) at least MIN_SPEEDUP times faster end-to-end, then emit the
# measurements as BENCH_checkpoint.json for trend tracking.
#
# Usage: tools/perf_smoke.sh [build-dir]
#
#   build-dir     defaults to ./build (must already contain tools/vstack)
#   MIN_SPEEDUP   env override of the asserted ratio (default 5.0)
#   FAULTS        env override of the campaign size (default 256)
#
# Exits non-zero if the reports differ or the speedup falls short.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
vstack="${build}/tools/vstack"
[ -x "${vstack}" ] || {
    echo "error: ${vstack} not built (run: cmake -B ${build} -S . && cmake --build ${build} -j)" >&2
    exit 2
}

min_speedup="${MIN_SPEEDUP:-5.0}"
faults="${FAULTS:-256}"
out="$(mktemp -d /tmp/vstack_perf_smoke.XXXXXX)"
trap 'rm -rf "${out}"' EXIT

# Results dir off: every sample must actually simulate (a cache hit
# would time the filesystem, and a journal would leak across runs).
# Best-of-REPS wall time: minimum filters out scheduler noise, which
# at a 5x threshold is otherwise enough to flake the assertion.
reps="${REPS:-3}"
run() { # run <tag> <extra args...>
    local tag="$1"
    shift
    local best=-1 t0 t1 ms i
    for ((i = 0; i < reps; i++)); do
        t0="$(date +%s%N)"
        VSTACK_RESULTS= "${vstack}" campaign sha --core ax72 \
            -n "${faults}" --seed 42 "$@" \
            > "${out}/uarch.${tag}" 2> /dev/null
        t1="$(date +%s%N)"
        ms=$(((t1 - t0) / 1000000))
        if ((best < 0 || ms < best)); then best=${ms}; fi
    done
    echo "${best}"
}

echo "== uarch campaign: sha/ax72/RF, n=${faults}, jobs=1"
cold_ms="$(run cold --no-checkpoint)"
accel_ms="$(run accel)"
echo "   cold ${cold_ms} ms, accelerated ${accel_ms} ms"

echo "== byte-identity: accelerated vs cold campaign report"
cmp "${out}/uarch.cold" "${out}/uarch.accel" || {
    echo "error: accelerated report differs from cold report" >&2
    exit 1
}

# SVF byte-identity rides along (its speedup is not asserted: the
# interpreter's runs are short enough that fixed costs dominate).
echo "== svf campaign byte-identity, n=${faults}"
VSTACK_RESULTS= "${vstack}" svf sha -n "${faults}" --seed 42 \
    --no-checkpoint > "${out}/svf.cold" 2> /dev/null
VSTACK_RESULTS= "${vstack}" svf sha -n "${faults}" --seed 42 \
    > "${out}/svf.accel" 2> /dev/null
cmp "${out}/svf.cold" "${out}/svf.accel" || {
    echo "error: accelerated SVF report differs from cold report" >&2
    exit 1
}

speedup="$(awk -v c="${cold_ms}" -v a="${accel_ms}" \
    'BEGIN { printf "%.2f", (a + 0 > 0) ? c / a : 0 }')"
echo "== speedup: ${speedup}x (required >= ${min_speedup}x)"

cat > BENCH_checkpoint.json <<EOF
{
  "bench": "checkpoint_accelerator",
  "workload": "sha",
  "core": "ax72",
  "structure": "RF",
  "faults": ${faults},
  "cold_ms": ${cold_ms},
  "accelerated_ms": ${accel_ms},
  "speedup": ${speedup},
  "min_speedup": ${min_speedup},
  "byte_identical": true
}
EOF
echo "== wrote BENCH_checkpoint.json"

awk -v s="${speedup}" -v m="${min_speedup}" \
    'BEGIN { exit !(s + 0 >= m + 0) }' || {
    echo "error: speedup ${speedup}x below required ${min_speedup}x" >&2
    exit 1
}
echo "== perf smoke passed"
