#!/usr/bin/env bash
# Checkpoint-accelerator + fast-path performance smoke: assert that the
# accelerated campaign paths are (a) byte-identical to the cold path
# and (b) faster end-to-end by the asserted ratios, then emit the
# measurements as BENCH_checkpoint.json and BENCH_fastpath.json for
# trend tracking.
#
# Three configurations of the same campaign are timed:
#
#   cold        VSTACK_FASTPATH=0 --no-checkpoint  (pure re-execution)
#   checkpoint  VSTACK_FASTPATH=0                  (checkpoint accelerator)
#   fastpath    default                            (checkpoint + fast path:
#               densified restore grid, batched digest staging, hardware
#               CRC-32C, predecoded dispatch)
#
# The end-to-end fastpath-vs-checkpoint ratio is bounded by the
# never-reconverging tail samples, which re-simulate to completion in
# every mode (see DESIGN.md §12); the digest-CRC component itself is
# asserted separately at >= MIN_CRC_SPEEDUP via the microbenchmark
# binary when it has been built.
#
# Usage: tools/perf_smoke.sh [build-dir]
#
#   build-dir            defaults to ./build (must contain tools/vstack)
#   MIN_SPEEDUP          checkpoint-vs-cold assert (default 5.0)
#   MIN_FASTPATH_SPEEDUP fastpath-vs-checkpoint assert (default 1.25)
#   MIN_COMBINED_SPEEDUP fastpath-vs-cold assert (default 5.0)
#   MIN_CRC_SPEEDUP      fast-CRC-vs-reference assert (default 3.0)
#   FAULTS               campaign size (default 256)
#   ASSERT               0 = byte-identity only, speedups advisory
#                        (sanitizer builds)
#   BENCH_OUT            directory for the BENCH_*.json files
#                        (default: repo root)
#
# Exits non-zero if any report differs or any speedup falls short.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
vstack="${build}/tools/vstack"
[ -x "${vstack}" ] || {
    echo "error: ${vstack} not built (run: cmake -B ${build} -S . && cmake --build ${build} -j)" >&2
    exit 2
}

min_speedup="${MIN_SPEEDUP:-5.0}"
min_fastpath="${MIN_FASTPATH_SPEEDUP:-1.25}"
min_combined="${MIN_COMBINED_SPEEDUP:-5.0}"
min_crc="${MIN_CRC_SPEEDUP:-3.0}"
faults="${FAULTS:-256}"
bench_out="${BENCH_OUT:-.}"
out="$(mktemp -d /tmp/vstack_perf_smoke.XXXXXX)"
trap 'rm -rf "${out}"' EXIT

# Results dir off: every sample must actually simulate (a cache hit
# would time the filesystem, and a journal would leak across runs).
# Best-of-REPS wall time: minimum filters out scheduler noise, which
# at a 5x threshold is otherwise enough to flake the assertion.
reps="${REPS:-3}"
run() { # run <tag> <extra args...>
    local tag="$1"
    shift
    local best=-1 t0 t1 ms i
    for ((i = 0; i < reps; i++)); do
        t0="$(date +%s%N)"
        VSTACK_RESULTS= "${vstack}" campaign sha --core ax72 \
            -n "${faults}" --seed 42 "$@" \
            > "${out}/uarch.${tag}" 2> /dev/null
        t1="$(date +%s%N)"
        ms=$(((t1 - t0) / 1000000))
        if ((best < 0 || ms < best)); then best=${ms}; fi
    done
    echo "${best}"
}

echo "== uarch campaign: sha/ax72/RF, n=${faults}, jobs=1"
cold_ms="$(run cold --no-checkpoint)"
accel_ms="$(run accel)"
echo "   cold ${cold_ms} ms, accelerated ${accel_ms} ms"

echo "== byte-identity: accelerated vs cold campaign report"
cmp "${out}/uarch.cold" "${out}/uarch.accel" || {
    echo "error: accelerated report differs from cold report" >&2
    exit 1
}

# SVF byte-identity rides along (its speedup is not asserted: the
# interpreter's runs are short enough that fixed costs dominate).
echo "== svf campaign byte-identity, n=${faults}"
VSTACK_RESULTS= "${vstack}" svf sha -n "${faults}" --seed 42 \
    --no-checkpoint > "${out}/svf.cold" 2> /dev/null
VSTACK_RESULTS= "${vstack}" svf sha -n "${faults}" --seed 42 \
    > "${out}/svf.accel" 2> /dev/null
cmp "${out}/svf.cold" "${out}/svf.accel" || {
    echo "error: accelerated SVF report differs from cold report" >&2
    exit 1
}

speedup="$(awk -v c="${cold_ms}" -v a="${accel_ms}" \
    'BEGIN { printf "%.2f", (a + 0 > 0) ? c / a : 0 }')"
echo "== speedup: ${speedup}x (required >= ${min_speedup}x)"

cat > "${bench_out}/BENCH_checkpoint.json" <<EOF
{
  "bench": "checkpoint_accelerator",
  "workload": "sha",
  "core": "ax72",
  "structure": "RF",
  "faults": ${faults},
  "cold_ms": ${cold_ms},
  "accelerated_ms": ${accel_ms},
  "speedup": ${speedup},
  "min_speedup": ${min_speedup},
  "byte_identical": true
}
EOF
echo "== wrote ${bench_out}/BENCH_checkpoint.json"

# --- fast path: the same campaign with the fast path pinned off, so
# the delta isolates what predecode + batched/hardware CRC digesting +
# the densified restore grid buy on top of the checkpoint accelerator.
echo "== fastpath: checkpoint-only (VSTACK_FASTPATH=0) vs default"
ckpt_ms="$(export VSTACK_FASTPATH=0 && run ckpt)"
fast_ms="${accel_ms}"
echo "   cold ${cold_ms} ms, checkpoint ${ckpt_ms} ms, fastpath ${fast_ms} ms"

echo "== byte-identity: fastpath vs checkpoint-only campaign report"
cmp "${out}/uarch.ckpt" "${out}/uarch.accel" || {
    echo "error: fastpath report differs from checkpoint-only report" >&2
    exit 1
}

fast_speedup="$(awk -v c="${ckpt_ms}" -v f="${fast_ms}" \
    'BEGIN { printf "%.2f", (f + 0 > 0) ? c / f : 0 }')"
combined_speedup="$(awk -v c="${cold_ms}" -v f="${fast_ms}" \
    'BEGIN { printf "%.2f", (f + 0 > 0) ? c / f : 0 }')"
echo "== fastpath speedup: ${fast_speedup}x vs checkpoint-only" \
    "(required >= ${min_fastpath}x), ${combined_speedup}x vs cold" \
    "(required >= ${min_combined}x)"

# Digest-CRC component ratio from the microbenchmark binary (skipped
# when bench/ wasn't built): reference engine time over the best fast
# engine's time on the same buffer.  This is the prong where the >=3x
# claim lives; the end-to-end ratio above is tail-bounded.
crc_speedup=0
bench_bin="${build}/bench/bench_sim_throughput"
if [ -x "${bench_bin}" ]; then
    "${bench_bin}" --benchmark_filter='BM_Crc32c' \
        --benchmark_format=json --benchmark_min_time=0.1 \
        > "${out}/crc.json" 2> /dev/null || true
    crc_speedup="$(awk -F'[:,]' '
        /"run_name"/       { gsub(/[" ]/, "", $2); name = $2 }
        /"error_occurred"/ { err[name] = 1 }
        /"real_time"/      { t[name] = $2 + 0 }
        END {
            ref = t["BM_Crc32c/reference"]; best = 0
            for (n in t)
                if (n != "BM_Crc32c/reference" && !(n in err) && t[n] > 0) {
                    s = ref / t[n]
                    if (s > best) best = s
                }
            printf "%.2f", best
        }' "${out}/crc.json")"
    echo "== digest CRC engine: ${crc_speedup}x vs reference" \
        "(required >= ${min_crc}x)"
else
    echo "== digest CRC engine: bench_sim_throughput not built, skipped"
fi

cat > "${bench_out}/BENCH_fastpath.json" <<EOF
{
  "bench": "fastpath",
  "workload": "sha",
  "core": "ax72",
  "structure": "RF",
  "faults": ${faults},
  "cold_ms": ${cold_ms},
  "checkpoint_ms": ${ckpt_ms},
  "fastpath_ms": ${fast_ms},
  "speedup_vs_checkpoint": ${fast_speedup},
  "speedup_vs_cold": ${combined_speedup},
  "crc_fast_vs_reference": ${crc_speedup},
  "min_speedup_vs_checkpoint": ${min_fastpath},
  "min_speedup_vs_cold": ${min_combined},
  "min_crc_speedup": ${min_crc},
  "byte_identical": true
}
EOF
echo "== wrote ${bench_out}/BENCH_fastpath.json"

# Speedup assertions are advisory under ASSERT=0 (sanitizer builds:
# byte-identity above still gates, but instrumented timing ratios
# don't model the production build).
if [ "${ASSERT:-1}" = "1" ]; then
    awk -v s="${speedup}" -v m="${min_speedup}" \
        'BEGIN { exit !(s + 0 >= m + 0) }' || {
        echo "error: speedup ${speedup}x below required ${min_speedup}x" >&2
        exit 1
    }
    awk -v s="${fast_speedup}" -v m="${min_fastpath}" \
        'BEGIN { exit !(s + 0 >= m + 0) }' || {
        echo "error: fastpath speedup ${fast_speedup}x below required ${min_fastpath}x" >&2
        exit 1
    }
    awk -v s="${combined_speedup}" -v m="${min_combined}" \
        'BEGIN { exit !(s + 0 >= m + 0) }' || {
        echo "error: combined speedup ${combined_speedup}x below required ${min_combined}x" >&2
        exit 1
    }
    if [ -x "${bench_bin}" ]; then
        awk -v s="${crc_speedup}" -v m="${min_crc}" \
            'BEGIN { exit !(s + 0 >= m + 0) }' || {
            echo "error: CRC engine speedup ${crc_speedup}x below required ${min_crc}x" >&2
            exit 1
        }
    fi
fi
echo "== perf smoke passed"
